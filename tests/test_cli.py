"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import EXPERIMENTS, HEAVY, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for experiment_id in EXPERIMENTS:
            assert experiment_id in out
        assert "[heavy]" in out

    def test_run_table1(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "STM32F446RE" in out
        assert (tmp_path / "table1.txt").exists()

    def test_run_no_save(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        assert main(["run", "table1", "--no-save"]) == 0
        assert not (tmp_path / "table1.txt").exists()

    def test_unknown_experiment(self, capsys):
        assert main(["run", "nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_scale_flag(self, capsys):
        assert main(["run", "table1", "--scale", "ci", "--no-save"]) == 0

    def test_registry_modules_importable(self):
        import importlib

        for module_name in EXPERIMENTS.values():
            module = importlib.import_module(module_name)
            assert hasattr(module, "run")

    def test_heavy_subset_of_registry(self):
        assert HEAVY <= set(EXPERIMENTS)


class TestObsCommand:
    def test_obs_report(self, capsys, tmp_path):
        jsonl = tmp_path / "obs.jsonl"
        assert main(["obs", "--arch", "tiny", "--repeats", "1",
                     "--jsonl", str(jsonl)]) == 0
        out = capsys.readouterr().out
        # Modeled-vs-measured bridge table plus the metrics/span report.
        assert "modeled" in out and "measured" in out
        assert "interpreter.op_calls" in out
        assert "interpreter/invoke" in out
        assert "cache.layer_latency.hit_rate" in out
        # The sink captured spans and the final metrics snapshot as JSONL.
        import json

        entries = [json.loads(line) for line in jsonl.read_text().splitlines()]
        assert {"span", "counter"} <= {entry["type"] for entry in entries}

    def test_obs_unknown_arch(self):
        with pytest.raises(SystemExit):
            main(["obs", "--arch", "bogus"])


class TestSearchResumeCommands:
    def test_search_and_resume(self, capsys, tmp_path):
        checkpoint = tmp_path / "search.npz"
        args = ["search", "--epochs", "1", "--samples", "24",
                "--checkpoint", str(checkpoint)]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "extracted architecture" in first
        assert checkpoint.exists()

        # Resuming a completed run replays nothing and reports identically.
        assert main(["resume", str(checkpoint)]) == 0
        second = capsys.readouterr().out
        assert "resuming from" in second
        assert first.splitlines()[-2] in second  # same loss history line

    def test_search_without_checkpoint(self, capsys):
        assert main(["search", "--epochs", "1", "--samples", "24"]) == 0
        assert "checkpoint ->" not in capsys.readouterr().out

    def test_resume_rejects_foreign_checkpoint(self, capsys, tmp_path):
        import numpy as np

        from repro.resilience.checkpoint import Checkpoint, save_checkpoint

        path = tmp_path / "foreign.npz"
        save_checkpoint(str(path), Checkpoint(kind="dnas", payload={"epoch": 0,
                                                                    "total_epochs": 1}))
        assert main(["resume", str(path)]) == 2
        assert "lacks run settings" in capsys.readouterr().err


class TestCompileCommand:
    def _unfused_mbuf(self, tmp_path):
        import numpy as np

        from repro.runtime.graph import Graph, OpNode, TensorSpec
        from repro.runtime.serializer import serialize

        rng = np.random.default_rng(0)
        g = Graph(name="cli-compile", inputs=["x"], outputs=["y"])
        g.add_tensor(TensorSpec("x", (6, 6, 2), "float32", "input"))
        w = rng.normal(0, 0.3, (3, 3, 2, 4)).astype(np.float32)
        b = np.zeros(4, np.float32)
        g.add_tensor(TensorSpec("w", w.shape, "float32", "weight", data=w))
        g.add_tensor(TensorSpec("b", b.shape, "float32", "bias", data=b))
        g.add_tensor(TensorSpec("conv", (6, 6, 4), "float32", "activation"))
        g.add_op(OpNode(kind="conv2d", name="conv", inputs=["x", "w", "b"], outputs=["conv"],
                        attrs={"stride": 1, "padding": "same", "activation": None}))
        scale = rng.uniform(0.5, 1.5, (4,)).astype(np.float32)
        offset = rng.normal(0, 0.1, (4,)).astype(np.float32)
        g.add_tensor(TensorSpec("s", scale.shape, "float32", "weight", data=scale))
        g.add_tensor(TensorSpec("o", offset.shape, "float32", "bias", data=offset))
        g.add_tensor(TensorSpec("bn", (6, 6, 4), "float32", "activation"))
        g.add_op(OpNode(kind="batch_norm", name="bn", inputs=["conv", "s", "o"], outputs=["bn"]))
        g.add_tensor(TensorSpec("y", (6, 6, 4), "float32", "output"))
        g.add_op(OpNode(kind="relu", name="y", inputs=["bn"], outputs=["y"]))
        path = tmp_path / "model.mbuf"
        path.write_bytes(serialize(g))
        return path

    def test_compile_prints_summary_and_roundtrips(self, capsys, tmp_path):
        import numpy as np

        from repro.runtime.interpreter import Interpreter
        from repro.runtime.serializer import deserialize

        path = self._unfused_mbuf(tmp_path)
        out_path = tmp_path / "model.O2.mbuf"
        assert main(["compile", str(path), "-o", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "pass fuse_batch_norm" in out
        assert "[fold_bn]" in out and "[fuse_activation]" in out
        assert "peak SRAM" in out
        # The written artifact deserializes and matches the original model.
        original = deserialize(path.read_bytes())
        compiled = deserialize(out_path.read_bytes())
        assert len(compiled.ops) < len(original.ops)
        x = np.random.default_rng(1).normal(0, 1, (2, 6, 6, 2)).astype(np.float32)
        np.testing.assert_allclose(
            Interpreter(compiled).invoke(x), Interpreter(original).invoke(x),
            rtol=1e-4, atol=1e-5,
        )

    def test_compile_o0_is_identity(self, capsys, tmp_path):
        path = self._unfused_mbuf(tmp_path)
        out_path = tmp_path / "model.O0.mbuf"
        assert main(["compile", str(path), "--level", "O0", "-o", str(out_path)]) == 0
        assert "(no passes at this level)" in capsys.readouterr().out
        assert out_path.read_bytes() == path.read_bytes()

    def test_compile_missing_file(self, capsys):
        assert main(["compile", "nope.mbuf"]) == 2
        assert "no such model file" in capsys.readouterr().err

    def test_compile_unknown_level(self, capsys, tmp_path):
        path = self._unfused_mbuf(tmp_path)
        assert main(["compile", str(path), "--level", "O7"]) == 2
        assert "unknown compile level" in capsys.readouterr().err

    def test_compile_rejects_malformed_file(self, capsys, tmp_path):
        path = tmp_path / "junk.mbuf"
        path.write_bytes(b"MBUF" + b"\x00" * 32)
        assert main(["compile", str(path)]) == 1
        assert "REJECTED" in capsys.readouterr().err


class TestServeBench:
    def test_serve_bench_smoke(self, capsys, tmp_path):
        json_path = tmp_path / "serving.json"
        assert main(["serve-bench", "--mode", "smoke", "--requests", "200",
                     "--json", str(json_path)]) == 0
        out = capsys.readouterr().out
        assert "serving latency" in out
        assert "micro-batching throughput gain" in out

        import json

        section = json.loads(json_path.read_text())
        assert section["section"] == "serving_latency"
        assert section["requests"] == 200
        assert section["conservation_ok"] is True
        assert set(section["modes"]) == {"unbatched", "batched"}

    def test_serve_bench_unknown_mode(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve-bench", "--mode", "warp"])

    def test_serve_bench_bad_requests(self, capsys):
        assert main(["serve-bench", "--mode", "smoke", "--requests", "-5"]) == 2
