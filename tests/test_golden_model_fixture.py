"""Golden-fixture roundtrip for the serializer + interpreter.

A frozen quantized model (built deterministically: seeded weights, seeded
calibration, einsum backend) lives in ``tests/fixtures/`` as the exact
``MBUF`` byte stream plus a reference input/output pair. These tests pin
three independent contracts:

* the **builder** — rebuilding the model from specs reproduces the stored
  bytes exactly (weight init, BN folding, and quantization are stable);
* the **serializer** — deserialize → serialize is byte-identical;
* the **interpreter** — inference on the deserialized graph reproduces
  the stored logits.

Regenerate (only after an *intentional* format or numerics change) with::

    PYTHONPATH=src python tests/test_golden_model_fixture.py
"""

from __future__ import annotations

import pathlib

import numpy as np
import pytest

from repro.models.spec import (
    ArchSpec,
    ConvSpec,
    DenseSpec,
    DWConvSpec,
    GlobalPoolSpec,
    build_module,
    export_graph,
)
from repro.runtime.interpreter import Interpreter
from repro.runtime.serializer import MAGIC, deserialize, model_size_bytes, serialize
from repro.tensor import backend_scope

pytestmark = pytest.mark.tier1

FIXTURE_DIR = pathlib.Path(__file__).parent / "fixtures"
MODEL_PATH = FIXTURE_DIR / "golden_tiny.mbuf"
IO_PATH = FIXTURE_DIR / "golden_tiny_io.npz"


def _golden_arch() -> ArchSpec:
    return ArchSpec(
        name="golden-tiny",
        input_shape=(12, 12, 1),
        layers=(
            ConvSpec(8, kernel=3, stride=2),
            DWConvSpec(kernel=3, stride=1),
            ConvSpec(16, kernel=1),
            GlobalPoolSpec(),
            DenseSpec(4),
        ),
    )


def _build_golden_bytes() -> bytes:
    """Deterministic build: seeded weights and calibration, einsum backend."""
    arch = _golden_arch()
    rng = np.random.default_rng(0)
    calibration = rng.normal(size=(16, 12, 12, 1)).astype(np.float32)
    with backend_scope("einsum"):
        module = build_module(arch, rng=0)
        module.eval()
        graph = export_graph(arch, module=module, calibration=calibration, bits=8)
        return serialize(graph)


def _golden_input() -> np.ndarray:
    return np.random.default_rng(99).normal(size=(3, 12, 12, 1)).astype(np.float32)


class TestGoldenFixture:
    def test_fixture_files_exist(self):
        assert MODEL_PATH.is_file(), "run this module as a script to regenerate"
        assert IO_PATH.is_file()

    def test_builder_reproduces_stored_bytes(self):
        assert _build_golden_bytes() == MODEL_PATH.read_bytes()

    def test_serializer_roundtrip_is_byte_identical(self):
        blob = MODEL_PATH.read_bytes()
        assert blob[: len(MAGIC)] == MAGIC
        graph = deserialize(blob)
        assert serialize(graph) == blob
        assert model_size_bytes(graph) == len(blob)

    def test_interpreter_reproduces_stored_logits(self):
        graph = deserialize(MODEL_PATH.read_bytes())
        io_pair = np.load(IO_PATH)
        with backend_scope("einsum"):
            logits = Interpreter(graph).invoke(io_pair["x"])
        np.testing.assert_allclose(logits, io_pair["logits"], rtol=1e-5, atol=1e-6)

    def test_stored_input_matches_generator(self):
        io_pair = np.load(IO_PATH)
        np.testing.assert_array_equal(io_pair["x"], _golden_input())


def _regenerate() -> None:
    FIXTURE_DIR.mkdir(exist_ok=True)
    blob = _build_golden_bytes()
    MODEL_PATH.write_bytes(blob)
    x = _golden_input()
    with backend_scope("einsum"):
        logits = Interpreter(deserialize(blob)).invoke(x)
    np.savez(IO_PATH, x=x, logits=logits)
    print(f"wrote {MODEL_PATH} ({len(blob)} bytes) and {IO_PATH}")


if __name__ == "__main__":
    _regenerate()
