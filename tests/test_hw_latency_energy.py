"""Hardware latency/energy model behaviour (the §3 mechanisms)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DeploymentError
from repro.hw import (
    DEVICES,
    LARGE,
    MEDIUM,
    SMALL,
    EnergyModel,
    LatencyModel,
    get_device,
    synthesize_trace,
)
from repro.hw.characterize import (
    channel_sweep_conv,
    random_layer_corpus,
    sample_models,
)
from repro.hw.latency import fit_linear_latency
from repro.hw.workload import LayerWorkload, ModelWorkload


class TestDevices:
    def test_registry_complete(self):
        assert set(DEVICES) == {"STM32F446RE", "STM32F746ZG", "STM32F767ZI"}

    def test_aliases(self):
        assert get_device("S") is SMALL
        assert get_device("medium") is MEDIUM
        assert get_device("STM32F767ZI") is LARGE

    def test_unknown_device(self):
        with pytest.raises(DeploymentError):
            get_device("ESP32")

    def test_size_classes(self):
        assert SMALL.size_class == "S"
        assert MEDIUM.size_class == "M"
        assert LARGE.size_class == "L"

    def test_table1_figures(self):
        assert SMALL.sram_bytes == 128 * 1024
        assert MEDIUM.eflash_bytes == 1024 * 1024
        assert LARGE.price_usd == 8.0


class TestLatencyModel:
    def test_deterministic(self):
        layer = LayerWorkload.conv2d("c", (14, 14, 32), 32, 3)
        model = LatencyModel(MEDIUM)
        assert model.layer_latency(layer).seconds == model.layer_latency(layer).seconds

    def test_more_ops_more_latency_same_layer_type(self):
        model = LatencyModel(MEDIUM)
        small = LayerWorkload.conv2d("a", (14, 14, 16), 16, 3)
        large = LayerWorkload.conv2d("b", (14, 14, 64), 64, 3)
        assert model.layer_latency(large).seconds > model.layer_latency(small).seconds

    def test_m7_faster_than_m4(self):
        layer = LayerWorkload.conv2d("c", (14, 14, 32), 32, 3)
        s = LatencyModel(SMALL).layer_latency(layer).seconds
        m = LatencyModel(MEDIUM).layer_latency(layer).seconds
        assert 1.8 < s / m < 2.3  # paper: ~2x

    def test_channel_div4_fast_path(self):
        model = LatencyModel(LARGE)
        t138 = model.layer_latency(channel_sweep_conv(138)).seconds
        t140 = model.layer_latency(channel_sweep_conv(140)).seconds
        assert t138 > t140  # despite fewer ops!
        assert 1.4 < t138 / t140 < 2.1

    def test_depthwise_slower_per_op_than_conv(self):
        model = LatencyModel(MEDIUM)
        conv = LayerWorkload.conv2d("c", (14, 14, 32), 32, 3)
        dw = LayerWorkload.depthwise_conv2d("d", (14, 14, 32), 3)
        conv_rate = model.layer_latency(conv).ops_per_second
        dw_rate = model.layer_latency(dw).ops_per_second
        assert conv_rate > dw_rate

    def test_spread_disabled_removes_jitter(self):
        model = LatencyModel(MEDIUM, spread=False)
        # Without spread, two convs with identical ops/kind cost the same
        # per op (up to channel penalties).
        a = LayerWorkload.conv2d("a", (16, 16, 16), 32, 3)
        b = LayerWorkload.conv2d("b", (8, 8, 64), 32, 3)
        rate_a = model.layer_latency(a).seconds / a.ops
        rate_b = model.layer_latency(b).seconds / b.ops
        assert rate_a == pytest.approx(rate_b, rel=0.05)

    def test_model_latency_is_sum(self):
        model = LatencyModel(MEDIUM)
        workload = ModelWorkload(name="m")
        layers = [
            LayerWorkload.conv2d("a", (8, 8, 4), 8, 3),
            LayerWorkload.dense("b", 8, 4),
        ]
        for layer in layers:
            workload.append(layer)
        total = model.model_latency(workload)
        parts = sum(model.layer_latency(l).seconds for l in layers)
        assert total == pytest.approx(parts)

    def test_whole_model_linearity(self):
        model = LatencyModel(MEDIUM)
        models = sample_models("kws", 150, rng=5)
        fit = fit_linear_latency(models, model)
        assert 0.95 < fit.r_squared <= 1.0

    def test_backbone_slopes_differ(self):
        model = LatencyModel(MEDIUM)
        kws = fit_linear_latency(sample_models("kws", 60, rng=5), model)
        cifar = fit_linear_latency(sample_models("cifar10", 60, rng=5), model)
        assert kws.throughput_mops > cifar.throughput_mops

    def test_fit_requires_two_models(self):
        with pytest.raises(ValueError):
            fit_linear_latency([sample_models("kws", 1, rng=0)[0]], LatencyModel(MEDIUM))


class TestEnergyModel:
    def test_power_nearly_constant(self):
        em = EnergyModel(MEDIUM)
        models = sample_models("cifar10", 120, rng=3)
        powers = np.array([em.power(m) for m in models])
        cv = powers.std() / powers.mean()
        assert 0.003 < cv < 0.012  # paper: 0.00731

    def test_energy_is_power_times_latency(self):
        em = EnergyModel(MEDIUM)
        model = sample_models("kws", 1, rng=0)[0]
        report = em.energy(model)
        assert report.energy_j == pytest.approx(report.latency_s * report.power_w)
        assert report.energy_mj == pytest.approx(report.energy_j * 1e3)

    def test_small_device_lower_energy(self):
        model = sample_models("cifar10", 1, rng=1)[0]
        e_small = EnergyModel(SMALL).energy(model).energy_j
        e_medium = EnergyModel(MEDIUM).energy(model).energy_j
        assert e_small < e_medium

    def test_duty_cycle_bounds(self):
        em = EnergyModel(SMALL)
        model = sample_models("kws", 1, rng=2)[0]
        avg = em.duty_cycled_average_power(model, period_s=10.0)
        assert SMALL.sleep_power_w < avg < SMALL.active_power_w * 1.05

    def test_duty_cycle_saturates_at_active_power(self):
        em = EnergyModel(SMALL)
        model = sample_models("cifar10", 1, rng=2)[0]
        avg = em.duty_cycled_average_power(model, period_s=1e-9)
        assert avg == pytest.approx(em.power(model))


class TestPowerTrace:
    def test_average_power_consistent(self):
        model = sample_models("kws", 1, rng=4)[0]
        trace = synthesize_trace(model, SMALL, period_s=1.0)
        em = EnergyModel(SMALL)
        analytic = em.duty_cycled_average_power(model, period_s=1.0)
        assert trace.average_power_w == pytest.approx(analytic, rel=0.08)

    def test_active_longer_on_small_device(self):
        model = sample_models("kws", 1, rng=4)[0]
        t_small = synthesize_trace(model, SMALL)
        t_medium = synthesize_trace(model, MEDIUM)
        assert t_small.latency_s > t_medium.latency_s
        assert t_small.peak_current_a < t_medium.peak_current_a

    def test_trace_shapes(self):
        model = sample_models("kws", 1, rng=4)[0]
        trace = synthesize_trace(model, MEDIUM, period_s=0.5, sample_rate_hz=1000)
        assert trace.time_s.shape == trace.current_a.shape
        assert trace.period_s == 0.5

    @given(period=st.floats(0.3, 3.0))
    @settings(max_examples=15, deadline=None)
    def test_longer_period_lower_average_power(self, period):
        model = sample_models("kws", 1, rng=4)[0]
        short = synthesize_trace(model, SMALL, period_s=period)
        long = synthesize_trace(model, SMALL, period_s=period * 2)
        assert long.average_power_w <= short.average_power_w * 1.02
