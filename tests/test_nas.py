"""DNAS: decisions, supernets, cost accounting and the search loop."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SearchError
from repro.models.spec import arch_workload, export_graph, output_shape
from repro.nas import (
    ChoiceDecision,
    DSCNNSupernet,
    IBNSupernet,
    ResourceBudget,
    SearchConfig,
    budgets_for_device,
    gumbel_softmax,
    search,
)
from repro.nas.backbones import micronet_ad_supernet, micronet_kws_supernet, micronet_vww_supernet
from repro.nas.search import penalty
from repro.nn.module import Parameter
from repro.hw.devices import MEDIUM, SMALL
from repro.tensor import Tensor


class TestGumbelSoftmax:
    def test_sums_to_one(self, rng):
        logits = Tensor(np.array([0.5, -0.2, 1.0], dtype=np.float32))
        g = gumbel_softmax(logits, temperature=1.0, rng=rng)
        assert g.data.sum() == pytest.approx(1.0, abs=1e-5)
        assert (g.data >= 0).all()

    def test_hard_returns_one_hot(self, rng):
        logits = Tensor(np.array([0.5, -0.2, 1.0], dtype=np.float32))
        g = gumbel_softmax(logits, temperature=1.0, rng=rng, hard=True)
        assert sorted(g.data.tolist()) == [0.0, 0.0, 1.0]

    def test_low_temperature_concentrates(self, rng):
        logits = Tensor(np.array([2.0, 0.0, -2.0], dtype=np.float32))
        samples = [
            gumbel_softmax(logits, temperature=0.05, rng=rng).data.max() for _ in range(20)
        ]
        assert np.mean(samples) > 0.95

    def test_rejects_bad_temperature(self, rng):
        with pytest.raises(SearchError):
            gumbel_softmax(Tensor(np.zeros(2, np.float32)), temperature=0.0, rng=rng)

    def test_gradient_flows(self, rng):
        alpha = Parameter(np.zeros(3, dtype=np.float32))
        g = gumbel_softmax(alpha, temperature=1.0, rng=rng)
        (g * Tensor(np.array([1.0, 2.0, 3.0], np.float32))).sum().backward()
        assert alpha.grad is not None and np.abs(alpha.grad).sum() > 0


class TestChoiceDecision:
    def test_expected_value_in_hull(self, rng):
        decision = ChoiceDecision([16, 32, 64], "d", rng=0)
        g = decision.sample(1.0, rng)
        e = decision.expected_value(g).item()
        assert 16.0 <= e <= 64.0

    def test_width_mask_soft_blend(self, rng):
        decision = ChoiceDecision([2, 4], "d", rng=0)
        g = decision.sample(1.0, rng)
        mask = decision.width_mask(g, 4)
        # First two channels are enabled by every option.
        assert mask.data[0] == pytest.approx(1.0, abs=1e-5)
        assert 0.0 <= mask.data[3] <= 1.0

    def test_mask_rejects_oversized_option(self, rng):
        decision = ChoiceDecision([4, 8], "d", rng=0)
        g = decision.sample(1.0, rng)
        with pytest.raises(SearchError):
            decision.width_mask(g, 4)

    def test_selected_follows_alpha(self):
        decision = ChoiceDecision([16, 32, 64], "d", rng=0)
        decision.alpha.data = np.array([0.0, 5.0, 0.0], dtype=np.float32)
        assert decision.selected() == 32
        assert decision.selected_index() == 1

    def test_probabilities_normalized(self):
        decision = ChoiceDecision([1, 2, 3], "d", rng=0)
        assert decision.probabilities.sum() == pytest.approx(1.0)

    def test_needs_two_options(self):
        with pytest.raises(SearchError):
            ChoiceDecision([4], "d")


class TestSupernets:
    def test_dscnn_forward_and_costs(self, rng):
        net = DSCNNSupernet(
            input_shape=(16, 8, 1), num_classes=4,
            stem_options=[8, 16], num_blocks=2, block_options=[8, 16],
            stem_kernel=(4, 4), stem_stride=(2, 2), rng=0,
        )
        x = Tensor(rng.normal(size=(2, 16, 8, 1)).astype(np.float32))
        logits, costs = net.forward_search(x, temperature=1.0, rng=rng)
        assert logits.shape == (2, 4)
        assert costs.params.item() > 0
        assert costs.ops.item() > 0
        assert costs.working_memory.item() > 0

    def test_dscnn_extract_valid_arch(self, rng):
        net = DSCNNSupernet(
            input_shape=(16, 8, 1), num_classes=4,
            stem_options=[8, 16], num_blocks=3, block_options=[8, 16], rng=0,
            stem_kernel=(4, 4), stem_stride=(2, 2),
        )
        arch = net.extract("test-arch")
        assert output_shape(arch) == (4,)
        export_graph(arch, bits=8).validate()

    def test_dscnn_skip_removes_block(self, rng):
        net = DSCNNSupernet(
            input_shape=(16, 8, 1), num_classes=4,
            stem_options=[8, 16], num_blocks=3, block_options=[8, 16], rng=0,
            stem_kernel=(4, 4), stem_stride=(2, 2),
        )
        for block in net.blocks:
            block.skip.alpha.data = np.array([0.0, 5.0], dtype=np.float32)  # skip
        arch = net.extract("skipped")
        # Stem + pooling + dense only: no depthwise blocks remain.
        workload = arch_workload(arch)
        assert not any(l.kind == "depthwise_conv2d" for l in workload.layers)

    def test_dscnn_mismatched_maxima_rejected(self):
        with pytest.raises(SearchError):
            DSCNNSupernet(
                input_shape=(16, 8, 1), num_classes=4,
                stem_options=[8], num_blocks=1, block_options=[16], rng=0,
            )

    def test_ibn_forward_and_extract(self, rng):
        net = micronet_vww_supernet(input_size=24, rng=0)
        x = Tensor(rng.normal(size=(2, 24, 24, 1)).astype(np.float32))
        logits, costs = net.forward_search(x, temperature=1.0, rng=rng)
        assert logits.shape == (2, 2)
        arch = net.extract("vww-test")
        assert output_shape(arch) == (2,)
        export_graph(arch, bits=8).validate()

    def test_decisions_enumerated(self):
        net = micronet_kws_supernet(rng=0)
        decisions = net.decisions()
        # stem + per-block width + per-(stride-1)-block skip
        assert len(decisions) == 1 + len(net.blocks) * 2

    def test_backbone_factories(self):
        assert micronet_ad_supernet(rng=0).blocks[-1].stride == 2
        assert micronet_kws_supernet(rng=0).stem_kernel == (10, 4)


class TestBudgets:
    def test_budget_scales_with_device(self):
        small = budgets_for_device(SMALL)
        medium = budgets_for_device(MEDIUM)
        assert medium.params > small.params
        assert medium.activation_bytes > small.activation_bytes

    def test_latency_target_sets_ops(self):
        budget = budgets_for_device(MEDIUM, latency_target_s=0.1)
        assert budget.ops is not None and budget.ops > 0
        assert budgets_for_device(MEDIUM).ops is None

    def test_4bit_doubles_param_budget(self):
        b8 = budgets_for_device(SMALL, weight_bits=8)
        b4 = budgets_for_device(SMALL, weight_bits=4)
        assert b4.params == pytest.approx(2 * b8.params)

    def test_penalty_zero_inside_budget(self, rng):
        net = DSCNNSupernet(
            input_shape=(16, 8, 1), num_classes=4,
            stem_options=[8, 16], num_blocks=1, block_options=[8, 16], rng=0,
            stem_kernel=(4, 4), stem_stride=(2, 2),
        )
        x = Tensor(rng.normal(size=(1, 16, 8, 1)).astype(np.float32))
        _, costs = net.forward_search(x, 1.0, rng)
        generous = ResourceBudget(params=1e9, activation_bytes=1e9, ops=1e12)
        assert penalty(costs, generous, SearchConfig()).item() == pytest.approx(0.0)

    def test_penalty_positive_outside_budget(self, rng):
        net = DSCNNSupernet(
            input_shape=(16, 8, 1), num_classes=4,
            stem_options=[8, 16], num_blocks=1, block_options=[8, 16], rng=0,
            stem_kernel=(4, 4), stem_stride=(2, 2),
        )
        x = Tensor(rng.normal(size=(1, 16, 8, 1)).astype(np.float32))
        _, costs = net.forward_search(x, 1.0, rng)
        tight = ResourceBudget(params=1.0, activation_bytes=1.0, ops=1.0)
        assert penalty(costs, tight, SearchConfig()).item() > 0


class TestSearchLoop:
    @pytest.fixture(scope="class")
    def tiny_data(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(96, 16, 8, 1)).astype(np.float32)
        y = rng.integers(0, 4, size=96)
        for i, label in enumerate(y):
            x[i, label * 2 : label * 2 + 3, :, 0] += 2.0
        return x, y

    def _supernet(self):
        return DSCNNSupernet(
            input_shape=(16, 8, 1), num_classes=4,
            stem_options=[8, 16], num_blocks=2, block_options=[8, 16], rng=0,
            stem_kernel=(4, 4), stem_stride=(2, 2),
        )

    def test_search_learns_task(self, tiny_data):
        x, y = tiny_data
        budget = ResourceBudget(params=1e7, activation_bytes=1e7)
        config = SearchConfig(epochs=5, warmup_epochs=1, batch_size=16)
        outcome = search(self._supernet(), x, y, budget, config, rng=0)
        assert outcome.history["accuracy"][-1] > 0.5  # chance = 0.25

    def test_tight_budget_yields_smaller_arch(self, tiny_data):
        x, y = tiny_data
        config = SearchConfig(epochs=5, warmup_epochs=1, batch_size=16,
                              lambda_size=20.0, lambda_memory=20.0, lambda_ops=20.0)
        loose = search(
            self._supernet(), x, y,
            ResourceBudget(params=1e7, activation_bytes=1e7), config, rng=0,
        )
        tight = search(
            self._supernet(), x, y,
            ResourceBudget(params=2500, activation_bytes=1200, ops=300_000), config, rng=0,
        )
        loose_params = arch_workload(loose.arch).params
        tight_params = arch_workload(tight.arch).params
        assert tight_params <= loose_params

    def test_history_complete(self, tiny_data):
        x, y = tiny_data
        outcome = search(
            self._supernet(), x, y,
            ResourceBudget(params=1e7, activation_bytes=1e7),
            SearchConfig(epochs=3, warmup_epochs=1, batch_size=16), rng=0,
        )
        for key in ("loss", "accuracy", "params", "ops", "memory", "temperature"):
            assert len(outcome.history[key]) == 3

    def test_temperature_anneals(self, tiny_data):
        x, y = tiny_data
        outcome = search(
            self._supernet(), x, y,
            ResourceBudget(params=1e7, activation_bytes=1e7),
            SearchConfig(epochs=3, warmup_epochs=1, batch_size=16,
                         temperature_init=5.0, temperature_final=0.5), rng=0,
        )
        temps = outcome.history["temperature"]
        assert temps[0] == pytest.approx(5.0)
        assert temps[-1] == pytest.approx(0.5)

    def test_meets_reports_budget(self, tiny_data):
        x, y = tiny_data
        budget = ResourceBudget(params=1e7, activation_bytes=1e7)
        outcome = search(
            self._supernet(), x, y, budget,
            SearchConfig(epochs=2, warmup_epochs=1, batch_size=16), rng=0,
        )
        assert outcome.meets(budget)
        assert not outcome.meets(ResourceBudget(params=1.0, activation_bytes=1.0))
