"""Audio front end: framing, mel filterbanks, MFCC, resizing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.audio import (
    AD_FEATURE_CONFIG,
    KWS_FEATURE_CONFIG,
    bilinear_downsample,
    frame_signal,
    hann_window,
    hz_to_mel,
    log_mel_spectrogram,
    mel_filterbank,
    mel_to_hz,
    mfcc,
    power_spectrum,
)
from repro.errors import DatasetError


class TestFraming:
    def test_kws_yields_49_frames(self):
        signal = np.zeros(8000, dtype=np.float32)  # 1s @ 8kHz
        frames = frame_signal(
            signal, KWS_FEATURE_CONFIG.frame_length, KWS_FEATURE_CONFIG.hop_length
        )
        assert frames.shape == (49, 320)

    def test_frame_contents(self):
        signal = np.arange(10, dtype=np.float32)
        frames = frame_signal(signal, 4, 2)
        assert np.array_equal(frames[0], [0, 1, 2, 3])
        assert np.array_equal(frames[1], [2, 3, 4, 5])

    def test_short_signal_rejected(self):
        with pytest.raises(DatasetError):
            frame_signal(np.zeros(3, dtype=np.float32), 10, 5)

    def test_non_1d_rejected(self):
        with pytest.raises(DatasetError):
            frame_signal(np.zeros((2, 100), dtype=np.float32), 10, 5)

    def test_bad_hop_rejected(self):
        with pytest.raises(DatasetError):
            frame_signal(np.zeros(100, dtype=np.float32), 10, 0)

    @given(n=st.integers(100, 2000), frame=st.integers(10, 80), hop=st.integers(5, 40))
    @settings(max_examples=40, deadline=None)
    def test_frame_count_formula(self, n, frame, hop):
        if n < frame:
            return
        frames = frame_signal(np.zeros(n, dtype=np.float32), frame, hop)
        assert frames.shape == (1 + (n - frame) // hop, frame)


class TestWindowAndSpectrum:
    def test_hann_endpoints(self):
        window = hann_window(64)
        assert window[0] == pytest.approx(0.0, abs=1e-6)
        assert window.max() <= 1.0

    def test_pure_tone_peak_bin(self):
        sr, n_fft = 8000, 512
        t = np.arange(sr) / sr
        tone = np.sin(2 * np.pi * 1000.0 * t).astype(np.float32)
        frames = frame_signal(tone, 512, 512)
        spectrum = power_spectrum(frames, n_fft)
        peak_bin = spectrum.mean(axis=0).argmax()
        expected_bin = round(1000.0 * n_fft / sr)
        assert abs(int(peak_bin) - expected_bin) <= 1

    def test_spectrum_nonnegative(self, rng):
        frames = rng.normal(size=(4, 128)).astype(np.float32)
        assert (power_spectrum(frames, 128) >= 0).all()


class TestMel:
    def test_mel_inverse(self):
        freqs = np.array([100.0, 440.0, 3999.0])
        assert np.allclose(mel_to_hz(hz_to_mel(freqs)), freqs, rtol=1e-9)

    def test_mel_monotone(self):
        freqs = np.linspace(10, 4000, 64)
        mels = hz_to_mel(freqs)
        assert (np.diff(mels) > 0).all()

    def test_filterbank_shape(self):
        bank = mel_filterbank(40, 512, 8000)
        assert bank.shape == (257, 40)
        assert (bank >= 0).all()
        assert (bank <= 1.0 + 1e-6).all()

    def test_filters_cover_band(self):
        bank = mel_filterbank(40, 512, 8000)
        # Every filter must have nonzero mass.
        assert (bank.sum(axis=0) > 0).all()

    def test_interior_partition_of_unity(self):
        bank = mel_filterbank(40, 512, 8000)
        interior = bank.sum(axis=1)[20:230]
        assert (interior > 0.5).all()
        assert (interior < 1.5).all()

    def test_bad_configs_rejected(self):
        with pytest.raises(DatasetError):
            mel_filterbank(1, 512, 8000)
        with pytest.raises(DatasetError):
            mel_filterbank(10, 512, 8000, fmin=5000, fmax=4000)


class TestFeatures:
    def test_mfcc_shape(self, rng):
        signal = rng.normal(size=8000).astype(np.float32)
        feats = mfcc(signal, KWS_FEATURE_CONFIG)
        assert feats.shape == (49, 10)
        assert np.isfinite(feats).all()

    def test_log_mel_shape(self, rng):
        signal = rng.normal(size=int(8000 * 2.2)).astype(np.float32)
        feats = log_mel_spectrogram(signal, AD_FEATURE_CONFIG)
        assert feats.shape[1] == 64
        assert feats.shape[0] >= 64

    def test_silence_hits_log_floor(self):
        signal = np.zeros(8000, dtype=np.float32)
        feats = log_mel_spectrogram(signal, KWS_FEATURE_CONFIG)
        assert np.isfinite(feats).all()
        assert feats.max() <= np.log(1e-5)

    def test_louder_signal_higher_energy(self, rng):
        quiet = rng.normal(size=8000).astype(np.float32) * 0.01
        loud = quiet * 100
        assert (
            log_mel_spectrogram(loud, KWS_FEATURE_CONFIG).mean()
            > log_mel_spectrogram(quiet, KWS_FEATURE_CONFIG).mean()
        )


class TestBilinearDownsample:
    def test_shape(self, rng):
        img = rng.normal(size=(64, 64)).astype(np.float32)
        assert bilinear_downsample(img, 32, 32).shape == (32, 32)

    @given(value=st.floats(-5, 5))
    @settings(max_examples=20, deadline=None)
    def test_constant_preserved(self, value):
        img = np.full((16, 16), value, dtype=np.float32)
        out = bilinear_downsample(img, 8, 8)
        assert np.allclose(out, value, atol=1e-4)

    def test_range_preserved(self, rng):
        img = rng.uniform(0, 1, size=(32, 32)).astype(np.float32)
        out = bilinear_downsample(img, 16, 16)
        assert out.min() >= img.min() - 1e-5
        assert out.max() <= img.max() + 1e-5
