"""Fake-quant QAT nodes: STE gradients, range tracking, LSQ."""

import numpy as np

from repro.quantization.fake_quant import FakeQuant, LearnedFakeQuant
from repro.tensor import Tensor


class TestFakeQuant:
    def test_identity_before_first_observation(self):
        fq = FakeQuant(bits=8)
        fq.eval()
        x = Tensor(np.array([1.0, 2.0], dtype=np.float32))
        assert np.array_equal(fq(x).data, x.data)

    def test_quantizes_to_grid(self, rng):
        fq = FakeQuant(bits=8)
        x = Tensor(rng.uniform(-1, 1, size=256).astype(np.float32))
        out = fq(x)
        scale = fq.quant_params().scale[0]
        steps = out.data / scale
        assert np.allclose(steps, np.round(steps), atol=1e-3)

    def test_quantization_error_bounded(self, rng):
        fq = FakeQuant(bits=8)
        x = Tensor(rng.uniform(-1, 1, size=512).astype(np.float32))
        out = fq(x)
        assert np.abs(out.data - x.data).max() <= fq.quant_params().scale[0]

    def test_ste_gradient_inside_range(self, rng):
        fq = FakeQuant(bits=8)
        warm = Tensor(rng.uniform(-1, 1, size=64).astype(np.float32))
        fq(warm)
        x = Tensor(np.array([0.0, 0.5], dtype=np.float32), requires_grad=True)
        fq(x).sum().backward()
        assert np.allclose(x.grad, 1.0)

    def test_ste_gradient_blocked_outside_range(self, rng):
        fq = FakeQuant(bits=8)
        fq.observe(np.array([-1.0, 1.0], dtype=np.float32))
        fq.eval()
        x = Tensor(np.array([100.0], dtype=np.float32), requires_grad=True)
        fq(x).sum().backward()
        assert np.allclose(x.grad, 0.0)

    def test_ema_range_tracking(self):
        fq = FakeQuant(bits=8, momentum=0.5)
        fq.observe(np.array([0.0, 1.0], dtype=np.float32))
        fq.observe(np.array([0.0, 3.0], dtype=np.float32))
        assert 1.0 < fq.high < 3.0

    def test_symmetric_mode(self):
        fq = FakeQuant(bits=8, symmetric=True)
        fq.observe(np.array([-0.5, 2.0], dtype=np.float32))
        assert fq.low == -fq.high

    def test_eval_does_not_update_ranges(self):
        fq = FakeQuant(bits=8)
        fq.observe(np.array([-1.0, 1.0], dtype=np.float32))
        fq.eval()
        fq(Tensor(np.array([100.0], dtype=np.float32)))
        assert fq.high < 2.0

    def test_4bit_coarser_than_8bit(self, rng):
        data = rng.uniform(-1, 1, size=256).astype(np.float32)
        errors = {}
        for bits in (4, 8):
            fq = FakeQuant(bits=bits)
            out = fq(Tensor(data))
            errors[bits] = np.abs(out.data - data).mean()
        assert errors[4] > errors[8]


class TestLearnedFakeQuant:
    def test_scale_initialized_from_data(self, rng):
        fq = LearnedFakeQuant(bits=8)
        fq(Tensor(rng.normal(size=256).astype(np.float32)))
        assert fq.scale.data[0] > 0

    def test_gradient_flows_to_scale(self, rng):
        fq = LearnedFakeQuant(bits=8)
        x = Tensor(rng.normal(size=64).astype(np.float32), requires_grad=True)
        (fq(x) ** 2).sum().backward()
        assert fq.scale.grad is not None
        assert x.grad is not None

    def test_scale_learns_to_cover_range(self, rng):
        """With gradient steps on a wide input the scale should grow."""
        from repro.nn import SGD

        fq = LearnedFakeQuant(bits=4, init_scale=0.001)
        fq._initialized = True  # force the deliberately-too-small scale
        data = rng.normal(size=512).astype(np.float32) * 4.0
        opt = SGD([fq.scale], lr=0.05, momentum=0.0)
        initial = float(fq.scale.data[0])
        for _ in range(100):
            x = Tensor(data)
            loss = ((fq(x) - Tensor(data)) ** 2).sum()
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert float(fq.scale.data[0]) > initial
