"""Model serialization round trips and interpreter execution."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.models import spec as S
from repro.models.spec import ArchSpec, ConvSpec, DenseSpec, DWConvSpec, FlattenSpec, GlobalPoolSpec
from repro.nn import accuracy
from repro.runtime import Interpreter, deserialize, model_size_bytes, serialize
from repro.tensor import Tensor


@pytest.fixture
def quantized_graph(tiny_arch, tiny_module, tiny_batch):
    return S.export_graph(tiny_arch, tiny_module, calibration=tiny_batch, bits=8)


class TestSerializer:
    def test_roundtrip_structure(self, quantized_graph):
        g2 = deserialize(serialize(quantized_graph))
        assert g2.name == quantized_graph.name
        assert list(g2.tensors) == list(quantized_graph.tensors)
        assert [op.kind for op in g2.ops] == [op.kind for op in quantized_graph.ops]
        assert g2.inputs == quantized_graph.inputs
        assert g2.outputs == quantized_graph.outputs

    def test_roundtrip_weights_bitexact(self, quantized_graph):
        g2 = deserialize(serialize(quantized_graph))
        for name, spec in quantized_graph.tensors.items():
            if spec.data is not None:
                assert np.array_equal(g2.tensors[name].data, spec.data), name

    def test_roundtrip_quant_params(self, quantized_graph):
        g2 = deserialize(serialize(quantized_graph))
        for name, spec in quantized_graph.tensors.items():
            if spec.quant is not None:
                assert np.allclose(g2.tensors[name].quant.scale, spec.quant.scale)
                assert g2.tensors[name].quant.zero_point == spec.quant.zero_point

    def test_roundtrip_execution_bitexact(self, quantized_graph, tiny_batch):
        g2 = deserialize(serialize(quantized_graph))
        out1 = Interpreter(quantized_graph).invoke(tiny_batch)
        out2 = Interpreter(g2).invoke(tiny_batch)
        assert np.array_equal(out1, out2)

    def test_bad_magic_rejected(self):
        with pytest.raises(GraphError):
            deserialize(b"XXXX" + b"\x00" * 32)

    def test_model_size_scales_with_weights(self):
        def arch(width):
            return ArchSpec(
                name=f"w{width}",
                input_shape=(8, 8, 1),
                layers=(ConvSpec(width, 3), GlobalPoolSpec(), DenseSpec(2)),
            )

        small = model_size_bytes(S.export_graph(arch(8), bits=8))
        big = model_size_bytes(S.export_graph(arch(32), bits=8))
        assert big > small

    def test_int4_weights_halve_storage(self):
        arch = ArchSpec(
            name="a",
            input_shape=(8, 8, 1),
            layers=(ConvSpec(32, 3), ConvSpec(64, 3), GlobalPoolSpec(), DenseSpec(2)),
        )
        size8 = model_size_bytes(S.export_graph(arch, bits=8))
        size4 = model_size_bytes(S.export_graph(arch, bits=4))
        assert size4 < 0.65 * size8


class TestInterpreter:
    def test_float_graph_matches_module(self, tiny_arch, tiny_module, tiny_batch):
        graph = S.export_float_graph(tiny_arch, tiny_module)
        out = Interpreter(graph).invoke(tiny_batch)
        expected = tiny_module(Tensor(tiny_batch)).data
        assert np.abs(out - expected).max() < 1e-4

    def test_int8_close_to_float(self, tiny_arch, tiny_module, tiny_batch, rng):
        batch = rng.normal(size=(16, 12, 12, 1)).astype(np.float32)
        float_graph = S.export_float_graph(tiny_arch, tiny_module)
        q_graph = S.quantize_graph(float_graph, calibration=batch, bits=8)
        float_out = Interpreter(float_graph).invoke(batch)
        q_out = Interpreter(q_graph).invoke(batch)
        # Predicted class agreement is the meaningful quantization metric.
        agreement = (float_out.argmax(1) == q_out.argmax(1)).mean()
        assert agreement >= 0.75

    def test_input_shape_checked(self, quantized_graph):
        with pytest.raises(GraphError):
            Interpreter(quantized_graph).invoke(np.zeros((2, 5, 5, 1), np.float32))

    def test_is_quantized_flag(self, tiny_arch, tiny_module, tiny_batch, quantized_graph):
        float_graph = S.export_float_graph(tiny_arch, tiny_module)
        assert not Interpreter(float_graph).is_quantized
        assert Interpreter(quantized_graph).is_quantized

    def test_plan_cached(self, quantized_graph):
        interp = Interpreter(quantized_graph)
        assert interp.plan() is interp.plan()

    def test_flatten_dense_graph(self, rng):
        arch = ArchSpec(
            name="flat",
            input_shape=(4, 4, 2),
            layers=(FlattenSpec(), DenseSpec(8, activation="relu"), DenseSpec(3)),
        )
        module = S.build_module(arch, rng=0)
        module.eval()
        batch = rng.normal(size=(5, 4, 4, 2)).astype(np.float32)
        graph = S.export_float_graph(arch, module)
        out = Interpreter(graph).invoke(batch)
        assert np.abs(out - module(Tensor(batch)).data).max() < 1e-4

    def test_softmax_output_graph(self, rng):
        arch = ArchSpec(
            name="sm",
            input_shape=(6, 6, 1),
            layers=(ConvSpec(4, 3, stride=2), GlobalPoolSpec(), DenseSpec(3)),
            include_softmax=True,
        )
        module = S.build_module(arch, rng=0)
        module.eval()
        batch = rng.normal(size=(3, 6, 6, 1)).astype(np.float32)
        graph = S.export_float_graph(arch, module)
        out = Interpreter(graph).invoke(batch)
        assert np.allclose(out.sum(axis=1), 1.0, atol=1e-5)

    def test_asymmetric_stem_graph(self, rng):
        arch = ArchSpec(
            name="asym",
            input_shape=(49, 10, 1),
            layers=(ConvSpec(8, kernel=(10, 4), stride=(2, 1)), GlobalPoolSpec(), DenseSpec(3)),
        )
        module = S.build_module(arch, rng=0)
        module.eval()
        batch = rng.normal(size=(2, 49, 10, 1)).astype(np.float32)
        graph = S.export_float_graph(arch, module)
        out = Interpreter(graph).invoke(batch)
        assert np.abs(out - module(Tensor(batch)).data).max() < 1e-4
