"""Graph compiler (repro.runtime.passes): equivalence and rewrite tests.

Every pass must be semantics-preserving: the compiled graph's outputs match
the uncompiled graph's at the repo-wide differential tolerance (exactly, for
the float fusion passes and the identical-params quantize elisions; within a
quantization-scale bound for quantize->dequantize removal). The pipeline
tests run randomized seeded graphs under both conv backends and replay the
golden fixture, and the batch tests pin vectorized-dispatch parity.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.quantization.params import QuantParams, affine_params_from_range
from repro.runtime.graph import Graph, OpNode, TensorSpec
from repro.runtime.interpreter import Interpreter
from repro.runtime.passes import (
    LEVELS,
    CompiledModel,
    canonical_level,
    compile_graph,
    elide_quant_pairs,
    eliminate_dead,
    fold_constants,
    fuse_activation,
    fuse_batch_norm,
)
from repro.runtime.planner import plan_arena
from repro.runtime.serializer import deserialize, serialize
from repro.tensor import backend_scope

TOL = dict(rtol=1e-4, atol=1e-5)


# ----------------------------------------------------------------------
# Graph builders
# ----------------------------------------------------------------------
def _unfused_graph(
    seed: int = 0,
    blocks: int = 2,
    input_shape=(8, 8, 3),
    width: int = 4,
    activation: str = "relu",
    with_bias: bool = True,
) -> Graph:
    """conv -> batch_norm -> relu[6] blocks + gap + dense, all unfused."""
    rng = np.random.default_rng(seed)
    h, w_dim, _ = input_shape
    g = Graph(name=f"unfused-{seed}", inputs=["x"], outputs=["logits"])
    g.add_tensor(TensorSpec("x", tuple(input_shape), "float32", "input"))
    current, channels = "x", input_shape[-1]
    for i in range(blocks):
        weight = rng.normal(0, 0.3, (3, 3, channels, width)).astype(np.float32)
        g.add_tensor(TensorSpec(f"b{i}_w", weight.shape, "float32", "weight", data=weight))
        inputs = [current, f"b{i}_w"]
        if with_bias:
            bias = rng.normal(0, 0.1, (width,)).astype(np.float32)
            g.add_tensor(TensorSpec(f"b{i}_b", bias.shape, "float32", "bias", data=bias))
            inputs.append(f"b{i}_b")
        g.add_tensor(TensorSpec(f"b{i}_conv", (h, w_dim, width), "float32", "activation"))
        g.add_op(
            OpNode(
                kind="conv2d",
                name=f"b{i}_conv",
                inputs=inputs,
                outputs=[f"b{i}_conv"],
                attrs={"stride": 1, "padding": "same", "activation": None},
            )
        )
        scale = rng.uniform(0.5, 1.5, (width,)).astype(np.float32)
        offset = rng.normal(0, 0.2, (width,)).astype(np.float32)
        g.add_tensor(TensorSpec(f"b{i}_scale", scale.shape, "float32", "weight", data=scale))
        g.add_tensor(TensorSpec(f"b{i}_offset", offset.shape, "float32", "bias", data=offset))
        g.add_tensor(TensorSpec(f"b{i}_bn", (h, w_dim, width), "float32", "activation"))
        g.add_op(
            OpNode(
                kind="batch_norm",
                name=f"b{i}_bn",
                inputs=[f"b{i}_conv", f"b{i}_scale", f"b{i}_offset"],
                outputs=[f"b{i}_bn"],
            )
        )
        g.add_tensor(TensorSpec(f"b{i}_act", (h, w_dim, width), "float32", "activation"))
        g.add_op(
            OpNode(kind=activation, name=f"b{i}_act", inputs=[f"b{i}_bn"], outputs=[f"b{i}_act"])
        )
        current, channels = f"b{i}_act", width
    g.add_tensor(TensorSpec("gap", (channels,), "float32", "activation"))
    g.add_op(OpNode(kind="global_avg_pool", name="gap", inputs=[current], outputs=["gap"]))
    head_w = rng.normal(0, 0.3, (channels, 5)).astype(np.float32)
    head_b = np.zeros(5, dtype=np.float32)
    g.add_tensor(TensorSpec("fc_w", head_w.shape, "float32", "weight", data=head_w))
    g.add_tensor(TensorSpec("fc_b", head_b.shape, "float32", "bias", data=head_b))
    g.add_tensor(TensorSpec("logits", (5,), "float32", "output"))
    g.add_op(OpNode(kind="dense", name="logits", inputs=["gap", "fc_w", "fc_b"], outputs=["logits"]))
    return g


def _random_graph(seed: int) -> Graph:
    """A randomized unfused graph: varying depth, activation, dead branch."""
    rng = np.random.default_rng(1000 + seed)
    g = _unfused_graph(
        seed=seed,
        blocks=int(rng.integers(1, 3)),
        width=int(rng.integers(2, 6)),
        activation=["relu", "relu6"][int(rng.integers(0, 2))],
        with_bias=bool(rng.integers(0, 2)),
    )
    if rng.integers(0, 2):
        # A dead branch off the input: produced, never consumed.
        g.add_tensor(TensorSpec("dead_out", g.tensors["x"].shape, "float32", "activation"))
        g.add_op(OpNode(kind="relu", name="dead_out", inputs=["x"], outputs=["dead_out"]))
    return g


def _invoke(graph: Graph, x: np.ndarray) -> np.ndarray:
    return Interpreter(graph).invoke(x)


def _x(graph: Graph, n: int = 3, seed: int = 99) -> np.ndarray:
    shape = tuple(graph.tensors[graph.inputs[0]].shape)
    return np.random.default_rng(seed).normal(0, 1, (n,) + shape).astype(np.float32)


# ----------------------------------------------------------------------
# Per-pass differential tests
# ----------------------------------------------------------------------
class TestFuseBatchNorm:
    def test_parity_and_structure(self):
        g = _unfused_graph(seed=1)
        x = _x(g)
        ref = _invoke(g, x)
        out, rewrites = fuse_batch_norm(g)
        assert len(rewrites) == 2
        assert all(op.kind != "batch_norm" for op in out.ops)
        np.testing.assert_allclose(_invoke(out, x), ref, **TOL)
        # The input graph is untouched (passes work on copies).
        assert any(op.kind == "batch_norm" for op in g.ops)

    def test_creates_bias_when_producer_has_none(self):
        g = _unfused_graph(seed=2, blocks=1, with_bias=False)
        x = _x(g)
        ref = _invoke(g, x)
        out, rewrites = fuse_batch_norm(g)
        assert rewrites
        conv = next(op for op in out.ops if op.kind == "conv2d")
        assert len(conv.inputs) == 3
        assert out.tensors[conv.inputs[2]].kind == "bias"
        np.testing.assert_allclose(_invoke(out, x), ref, **TOL)

    def test_skips_multi_consumer_producer(self):
        g = _unfused_graph(seed=3, blocks=1)
        # Second consumer of the conv output: fusing would change its value.
        g.add_tensor(TensorSpec("tap", g.tensors["b0_conv"].shape, "float32", "activation"))
        g.add_op(OpNode(kind="relu", name="tap", inputs=["b0_conv"], outputs=["tap"]))
        out, rewrites = fuse_batch_norm(g)
        assert not rewrites
        assert any(op.kind == "batch_norm" for op in out.ops)

    def test_skips_producer_with_fused_activation(self):
        g = _unfused_graph(seed=4, blocks=1)
        next(op for op in g.ops if op.kind == "conv2d").attrs["activation"] = "relu"
        out, rewrites = fuse_batch_norm(g)
        assert not rewrites

    def test_skips_bn_on_graph_input(self):
        g = Graph(name="bn-on-input", inputs=["x"], outputs=["y"])
        g.add_tensor(TensorSpec("x", (4, 4, 2), "float32", "input"))
        g.add_tensor(TensorSpec("s", (2,), "float32", "weight", data=np.ones(2, np.float32)))
        g.add_tensor(TensorSpec("o", (2,), "float32", "bias", data=np.zeros(2, np.float32)))
        g.add_tensor(TensorSpec("y", (4, 4, 2), "float32", "output"))
        g.add_op(OpNode(kind="batch_norm", name="y", inputs=["x", "s", "o"], outputs=["y"]))
        out, rewrites = fuse_batch_norm(g)
        assert not rewrites


class TestFuseActivation:
    def test_parity_after_bn_fold(self):
        g = _unfused_graph(seed=5)
        x = _x(g)
        ref = _invoke(g, x)
        folded, _ = fuse_batch_norm(g)
        out, rewrites = fuse_activation(folded)
        assert len(rewrites) == 2
        assert all(op.kind not in ("relu", "relu6") for op in out.ops)
        fused = [op for op in out.ops if op.attrs.get("activation")]
        assert len(fused) == 2
        np.testing.assert_allclose(_invoke(out, x), ref, **TOL)

    def test_fuses_into_standalone_bn(self):
        g = _unfused_graph(seed=6, blocks=1)
        out, rewrites = fuse_activation(g)
        # Without BN folding first, the relu fuses into the batch_norm.
        assert len(rewrites) == 1
        bn = next(op for op in out.ops if op.kind == "batch_norm")
        assert bn.attrs["activation"] == "relu"
        x = _x(g)
        np.testing.assert_allclose(_invoke(out, x), _invoke(g, x), **TOL)

    def test_quantized_fusion_requires_identical_params(self):
        qp_a = affine_params_from_range(-4.0, 4.0, bits=8)
        qp_b = affine_params_from_range(0.0, 4.0, bits=8)

        def build(out_params: QuantParams) -> Graph:
            g = Graph(name="qact", inputs=["x"], outputs=["y"])
            g.add_tensor(TensorSpec("x", (6,), "int8", "input", quant=qp_a))
            g.add_tensor(TensorSpec("m", (6,), "int8", "activation", quant=qp_a))
            g.add_tensor(
                TensorSpec("s", (6,), "float32", "weight", data=np.ones(6, np.float32))
            )
            g.add_tensor(
                TensorSpec("o", (6,), "float32", "bias", data=np.zeros(6, np.float32))
            )
            g.add_op(OpNode(kind="batch_norm", name="m", inputs=["x", "s", "o"], outputs=["m"]))
            g.add_tensor(TensorSpec("y", (6,), "int8", "output", quant=out_params))
            g.add_op(OpNode(kind="relu", name="y", inputs=["m"], outputs=["y"]))
            return g

        fused, rewrites = fuse_activation(build(qp_a))
        assert len(rewrites) == 1  # identical params: exact int rewrite
        skipped, rewrites = fuse_activation(build(qp_b))
        assert not rewrites  # different grids: fusing would change rounding


class TestFoldConstants:
    def test_folds_weight_only_subgraph(self):
        g = Graph(name="cf", inputs=["x"], outputs=["y"])
        g.add_tensor(TensorSpec("x", (6,), "float32", "input"))
        c = np.linspace(-1, 1, 6).astype(np.float32)
        g.add_tensor(TensorSpec("c", (6,), "float32", "weight", data=c))
        g.add_tensor(TensorSpec("c_relu", (6,), "float32", "activation"))
        g.add_op(OpNode(kind="relu", name="c_relu", inputs=["c"], outputs=["c_relu"]))
        g.add_tensor(TensorSpec("y", (6,), "float32", "output"))
        g.add_op(OpNode(kind="add", name="y", inputs=["x", "c_relu"], outputs=["y"]))
        x = _x(g)
        ref = _invoke(g, x)
        out, rewrites = fold_constants(g)
        assert len(rewrites) == 1
        assert len(out.ops) == 1
        spec = out.tensors["c_relu"]
        assert spec.kind == "weight"
        np.testing.assert_allclose(spec.data, np.maximum(c, 0.0), **TOL)
        np.testing.assert_allclose(_invoke(out, x), ref, **TOL)

    def test_never_folds_graph_outputs(self):
        g = Graph(name="cf-out", inputs=["x"], outputs=["x", "y"])
        g.add_tensor(TensorSpec("x", (4,), "float32", "input"))
        g.add_tensor(TensorSpec("c", (4,), "float32", "weight", data=np.ones(4, np.float32)))
        g.add_tensor(TensorSpec("y", (4,), "float32", "output"))
        g.add_op(OpNode(kind="relu", name="y", inputs=["c"], outputs=["y"]))
        out, rewrites = fold_constants(g)
        assert not rewrites  # y is the model interface


class TestElideQuantPairs:
    def _qdq_graph(self, in_params, out_params):
        g = Graph(name="qdq", inputs=["x"], outputs=["y"])
        g.add_tensor(TensorSpec("x", (8,), "int8", "input", quant=in_params))
        g.add_tensor(TensorSpec("f", (8,), "float32", "activation"))
        g.add_op(OpNode(kind="dequantize", name="f", inputs=["x"], outputs=["f"]))
        g.add_tensor(TensorSpec("r", (8,), "int8", "activation", quant=out_params))
        g.add_op(OpNode(kind="quantize", name="r", inputs=["f"], outputs=["r"]))
        g.add_tensor(TensorSpec("y", (8,), "float32", "output"))
        g.add_op(OpNode(kind="dequantize", name="y", inputs=["r"], outputs=["y"]))
        return g

    def test_dq_q_identical_params_exact(self):
        qp = affine_params_from_range(-2.0, 2.0, bits=8)
        g = self._qdq_graph(qp, qp)
        xq = np.random.default_rng(0).integers(-128, 128, (3, 8)).astype(np.int8)
        ref = Interpreter(g).invoke(xq)
        out, rewrites = elide_quant_pairs(g)
        assert len(rewrites) == 1
        assert np.array_equal(Interpreter(compile_graph(g).graph).invoke(xq), ref)

    def test_dq_q_mismatched_params_kept(self):
        a = affine_params_from_range(-2.0, 2.0, bits=8)
        b = affine_params_from_range(-1.0, 3.0, bits=8)
        out, rewrites = elide_quant_pairs(self._qdq_graph(a, b))
        assert not rewrites

    def test_q_dq_error_bounded_by_scale(self):
        qp = affine_params_from_range(-4.0, 4.0, bits=8)
        g = Graph(name="qdq-f", inputs=["x"], outputs=["y"])
        g.add_tensor(TensorSpec("x", (16,), "float32", "input"))
        g.add_tensor(TensorSpec("q", (16,), "int8", "activation", quant=qp))
        g.add_op(OpNode(kind="quantize", name="q", inputs=["x"], outputs=["q"]))
        g.add_tensor(TensorSpec("f", (16,), "float32", "activation"))
        g.add_op(OpNode(kind="dequantize", name="f", inputs=["q"], outputs=["f"]))
        g.add_tensor(TensorSpec("y", (16,), "float32", "output"))
        g.add_op(OpNode(kind="relu", name="y", inputs=["f"], outputs=["y"]))
        x = np.random.default_rng(1).uniform(-3, 3, (3, 16)).astype(np.float32)
        ref = Interpreter(g).invoke(x)
        compiled = compile_graph(g)
        got = Interpreter(compiled.graph).invoke(x)
        # The elision removes one rounding: error <= half a quantization step.
        assert np.abs(got - ref).max() <= float(qp.scale[0]) / 2 + 1e-7

    def test_graph_output_pair_preserved(self):
        qp = affine_params_from_range(-2.0, 2.0, bits=8)
        g = self._qdq_graph(qp, qp)
        g.outputs = ["r", "y"]  # the requantized tensor is now interface
        out, rewrites = elide_quant_pairs(g)
        assert not rewrites


class TestEliminateDead:
    def test_removes_dead_chain_and_tensors(self):
        g = _unfused_graph(seed=7, blocks=1)
        g.add_tensor(TensorSpec("d1", g.tensors["x"].shape, "float32", "activation"))
        g.add_op(OpNode(kind="relu", name="d1", inputs=["x"], outputs=["d1"]))
        g.add_tensor(TensorSpec("d2", g.tensors["x"].shape, "float32", "activation"))
        g.add_op(OpNode(kind="relu6", name="d2", inputs=["d1"], outputs=["d2"]))
        x = _x(g)
        ref = _invoke(g, x)
        out, rewrites = eliminate_dead(g)
        kinds = {r.kind for r in rewrites}
        assert kinds == {"remove_op", "remove_tensor"}
        assert "d1" not in out.tensors and "d2" not in out.tensors
        assert len(out.ops) == len(g.ops) - 2
        np.testing.assert_allclose(_invoke(out, x), ref, **TOL)

    def test_flash_shrinks_after_full_pipeline(self):
        g = _unfused_graph(seed=8)
        compiled = compile_graph(g, level="O2")
        assert len(serialize(compiled.graph)) < len(serialize(g))


# ----------------------------------------------------------------------
# Pipeline-level tests
# ----------------------------------------------------------------------
class TestCompilePipeline:
    def test_levels(self):
        g = _unfused_graph(seed=9)
        o0 = compile_graph(g, level="O0")
        assert not o0.report.passes and len(o0.graph.ops) == len(g.ops)
        o1 = compile_graph(g, level="O1")
        assert [p.name for p in o1.report.passes] == ["eliminate_dead"]
        o2 = compile_graph(g, level="O2")
        assert [p.name for p in o2.report.passes] == list(LEVELS["O2"])
        assert len(o2.graph.ops) < len(g.ops)

    def test_level_spellings(self):
        assert canonical_level(2) == "O2"
        assert canonical_level("o1") == "O1"
        assert canonical_level("0") == "O0"
        assert canonical_level(None) == "O2"
        with pytest.raises(GraphError, match="unknown compile level"):
            canonical_level("O9")

    def test_unknown_pass_rejected(self):
        with pytest.raises(GraphError, match="unknown pass"):
            compile_graph(_unfused_graph(seed=10), passes=["nope"])

    def test_explicit_pass_list(self):
        g = _unfused_graph(seed=11)
        compiled = compile_graph(g, passes=["eliminate_dead"])
        assert compiled.report.level == "custom"
        assert [p.name for p in compiled.report.passes] == ["eliminate_dead"]

    def test_summary_lists_passes_and_rewrites(self):
        compiled = compile_graph(_unfused_graph(seed=12))
        text = compiled.report.summary()
        for name in LEVELS["O2"]:
            assert name in text
        assert "[fold_bn]" in text and "[fuse_activation]" in text
        assert str(compiled.report.ops_removed) in text

    @pytest.mark.parametrize("backend", ["einsum", "gemm"])
    @pytest.mark.parametrize("seed", range(6))
    def test_randomized_differential(self, seed, backend):
        g = _random_graph(seed)
        x = _x(g, n=2, seed=seed)
        with backend_scope(backend):
            ref = _invoke(g, x)
            compiled = compile_graph(g, level="O2")
            got = _invoke(compiled.graph, x)
        np.testing.assert_allclose(got, ref, err_msg=f"seed={seed}", **TOL)
        # Round-trip: the compiled graph serializes and reloads unchanged.
        reloaded = deserialize(serialize(compiled.graph))
        np.testing.assert_allclose(_invoke(reloaded, x), got, **TOL)

    def test_input_graph_never_mutated(self):
        g = _unfused_graph(seed=13)
        before = serialize(g)
        compile_graph(g, level="O2")
        assert serialize(g) == before

    def test_obs_counters(self):
        from repro import obs

        obs.reset()
        obs.enable()
        try:
            compile_graph(_unfused_graph(seed=14), level="O2")
            metrics = obs.export()["metrics"]
            counters = metrics.get("counters", metrics)
            flat = str(counters)
            assert "compile.pass.fuse_batch_norm.rewrites" in flat
            assert "compile.ops_removed" in flat
            spans = [s["name"] for s in obs.export()["spans"]]
            assert "compile/pass/fuse_batch_norm" in spans
        finally:
            obs.disable()
            obs.reset()

    def test_compiled_model_interpreter(self):
        g = _unfused_graph(seed=15, blocks=1)
        compiled = compile_graph(g)
        assert isinstance(compiled, CompiledModel)
        x = _x(g, n=1)
        np.testing.assert_allclose(compiled.interpreter().invoke(x), _invoke(g, x), **TOL)


class TestGoldenReplay:
    """The golden fixture is already fused: compiling must be a no-op."""

    def test_golden_fixture_fixpoint(self):
        import pathlib

        fixture = pathlib.Path(__file__).parent / "fixtures" / "golden_tiny.mbuf"
        original = fixture.read_bytes()
        graph = deserialize(original)
        compiled = compile_graph(graph, level="O2")
        assert not compiled.report.rewrites
        assert serialize(compiled.graph) == original

    def test_golden_outputs_identical(self):
        import pathlib

        fixtures = pathlib.Path(__file__).parent / "fixtures"
        graph = deserialize((fixtures / "golden_tiny.mbuf").read_bytes())
        io = np.load(fixtures / "golden_tiny_io.npz")
        compiled = compile_graph(graph, level="O2")
        got = Interpreter(compiled.graph).invoke(io["x"])
        np.testing.assert_allclose(got, io["logits"], **TOL)


# ----------------------------------------------------------------------
# Batched execution
# ----------------------------------------------------------------------
class TestBatchExecution:
    @pytest.mark.parametrize("batch", [1, 3, 16])
    def test_batch_vs_loop_parity_float(self, batch):
        g = compile_graph(_unfused_graph(seed=16)).graph
        interp = Interpreter(g)
        x = _x(g, n=batch, seed=batch)
        batched = interp.invoke(x)
        looped = np.concatenate([interp.invoke(x[i : i + 1]) for i in range(batch)])
        np.testing.assert_allclose(batched, looped, **TOL)

    @pytest.mark.parametrize("batch", [1, 3, 16])
    def test_batch_vs_loop_parity_quantized(self, batch):
        from repro.models.spec import ArchSpec, ConvSpec, DenseSpec, GlobalPoolSpec, export_graph

        arch = ArchSpec(
            name="batch-q",
            input_shape=(8, 8, 1),
            layers=(ConvSpec(4, kernel=3, stride=2), GlobalPoolSpec(), DenseSpec(3)),
        )
        rng = np.random.default_rng(2)
        calib = rng.normal(0, 1, (8, 8, 8, 1)).astype(np.float32)
        interp = Interpreter(export_graph(arch, calibration=calib, bits=8))
        x = rng.normal(0, 1, (batch, 8, 8, 1)).astype(np.float32)
        batched = interp.invoke(x)
        looped = np.concatenate([interp.invoke(x[i : i + 1]) for i in range(batch)])
        # Quantized kernels are deterministic per sample: exact equality.
        assert np.array_equal(batched, looped)

    def test_batched_plan_scales_and_caches(self):
        g = compile_graph(_unfused_graph(seed=17)).graph
        interp = Interpreter(g)
        p1, p16 = interp.plan(1), interp.plan(batch_size=16)
        assert p16.arena_bytes > p1.arena_bytes
        assert p16.arena_bytes <= 16 * p1.arena_bytes  # alignment only helps
        assert interp.plan(16) is p16  # cached per batch size
        # Legacy single-sample sizing is byte-identical to plan_arena(g).
        assert p1.arena_bytes == plan_arena(g).arena_bytes

    def test_plan_rejects_bad_batch(self):
        with pytest.raises(GraphError, match="batch_size"):
            plan_arena(_unfused_graph(seed=18), batch_size=0)


# ----------------------------------------------------------------------
# Integration with quantization export and NAS budgets
# ----------------------------------------------------------------------
class TestQuantizedBatchNorm:
    def test_quantize_graph_handles_batch_norm(self):
        g = _unfused_graph(seed=19, blocks=1)
        rng = np.random.default_rng(3)
        calib = rng.normal(0, 1, (8,) + tuple(g.tensors["x"].shape)).astype(np.float32)
        from repro.models.spec import quantize_graph

        q = quantize_graph(g, calibration=calib, bits=8)
        bn = next(op for op in q.ops if op.kind == "batch_norm")
        offset = q.tensors[bn.inputs[2]]
        assert offset.dtype == "int32" and offset.data is not None
        x = calib[:3]
        float_out = Interpreter(g).invoke(x)
        quant_out = Interpreter(q).invoke(x)
        # Course agreement: int8 end-to-end error on a 1-block net.
        assert np.abs(quant_out - float_out).max() < 0.5


class TestResourceProfileCompileLevel:
    def test_level_in_memo_key(self):
        from repro.models.spec import ArchSpec, ConvSpec, DenseSpec, GlobalPoolSpec
        from repro.nas.budgets import clear_profile_cache, resource_profile

        arch = ArchSpec(
            name="profile-level",
            input_shape=(8, 8, 1),
            layers=(ConvSpec(4, kernel=3, stride=2), GlobalPoolSpec(), DenseSpec(3)),
        )
        clear_profile_cache()
        try:
            base = resource_profile(arch, bits=8)
            o2 = resource_profile(arch, bits=8, compile_level="O2")
            again = resource_profile(arch, bits=8, compile_level=2)
            # Distinct cache entries, but int 2 and "O2" share one.
            assert o2 is again
            assert o2 is not base
            assert o2.params > 0 and o2.activation_bytes > 0 and o2.ops > 0
            # Exported graphs arrive pre-fused, so O2 must not *grow* cost.
            assert o2.activation_bytes <= base.activation_bytes
        finally:
            clear_profile_cache()
