"""Scenario spec layer: schema validation, cross-references, budget
feasibility, compile-to-plan parity with the hand-wired experiments, fleet
simulation determinism, and the `repro spec` CLI."""

import json

import numpy as np
import pytest

from repro.errors import ConfigError, GraphError, ReproError
from repro.serve.traffic import TrafficConfig
from repro.spec import (
    builtin_spec_paths,
    compile_scenario,
    load_scenario,
    load_schema,
    resolve_spec_path,
    run_fleet_plan,
    run_plan,
    scenario_errors,
    schema_errors,
)

pytestmark = [pytest.mark.tier1, pytest.mark.spec]


def _minimal(**sections) -> dict:
    return {"spec_version": 1, "name": "test-scenario", **sections}


def _write_spec(tmp_path, data: dict, name: str = "spec.json") -> str:
    path = tmp_path / name
    path.write_text(json.dumps(data))
    return str(path)


class TestSchemaValidation:
    def test_minimal_document_valid(self):
        assert scenario_errors(_minimal()) == []

    def test_missing_required_keys(self):
        errors = schema_errors({"spec_version": 1}, load_schema())
        assert errors == ["name: required key is missing"]

    def test_wrong_type_is_path_qualified(self):
        data = _minimal(
            devices=[
                {"name": "a", "clock_mhz": 100, "sram_kb": 64, "eflash_kb": 256},
                {"name": "b", "clock_mhz": 100, "sram_kb": 64, "eflash_kb": 256},
                {"name": "c", "clock_mhz": 100, "sram_kb": "big", "eflash_kb": 256},
            ]
        )
        errors = scenario_errors(data)
        assert len(errors) == 1
        assert errors[0].startswith("devices[2].sram_kb: expected number")

    def test_out_of_range_fields(self):
        data = _minimal(
            traffic=[
                {
                    "name": "t",
                    "requests": 0,  # below minimum 1
                    "mean_rate_hz": 5.0,
                    "diurnal_amplitude": 1.5,  # must be < 1
                }
            ]
        )
        errors = scenario_errors(data)
        assert any(e.startswith("traffic[0].requests:") for e in errors)
        assert any(e.startswith("traffic[0].diurnal_amplitude:") for e in errors)

    def test_unknown_keys_rejected(self):
        errors = scenario_errors(_minimal(experimnets=[]))
        assert len(errors) == 1
        assert "unknown key" in errors[0]

    def test_all_errors_collected_not_fail_fast(self):
        data = _minimal(
            devices=[{"name": "a", "clock_mhz": -1, "sram_kb": 64, "eflash_kb": 0}],
            tasks=[{"name": "t", "kind": "ocr"}],
        )
        errors = scenario_errors(data)
        assert len(errors) == 3  # clock, eflash, and task kind — all at once


class TestCrossReferences:
    def test_dangling_device_reference(self):
        data = _minimal(
            targets=[{"name": "t0", "device": "STM32F9", "model": "micronet-kws-s"}]
        )
        errors = scenario_errors(data)
        assert len(errors) == 1
        assert errors[0].startswith("targets[0].device: unknown device 'STM32F9'")
        assert "STM32F446RE" in errors[0]  # candidates listed

    def test_dangling_model_and_traffic_and_target(self):
        data = _minimal(
            targets=[{"name": "t0", "device": "S", "model": "resnet50"}],
            fleet=[
                {
                    "name": "f",
                    "groups": [
                        {"name": "g", "target": "nope", "count": 2, "traffic": "quiet"}
                    ],
                }
            ],
        )
        errors = scenario_errors(data)
        assert any(e.startswith("targets[0].model: unknown model") for e in errors)
        assert any(e.startswith("fleet[0].groups[0].target:") for e in errors)
        assert any(e.startswith("fleet[0].groups[0].traffic:") for e in errors)

    def test_duplicate_names_rejected(self):
        data = _minimal(
            traffic=[
                {"name": "t", "requests": 1, "mean_rate_hz": 1.0},
                {"name": "t", "requests": 2, "mean_rate_hz": 2.0},
            ]
        )
        errors = scenario_errors(data)
        assert errors == [
            "traffic[1].name: duplicate name 't' (first declared at traffic[0])"
        ]

    def test_custom_device_cannot_shadow_builtin(self):
        data = _minimal(
            devices=[
                {"name": "STM32F446RE", "clock_mhz": 1, "sram_kb": 1, "eflash_kb": 1}
            ]
        )
        errors = scenario_errors(data)
        assert "shadows a builtin device" in errors[0]

    def test_family_expansion_in_experiments(self):
        data = _minimal(
            model_families=[{"name": "fam", "members": ["dscnn-s", "dscnn-m"]}],
            experiments=[{"name": "e", "kind": "pareto", "models": ["fam"]}],
        )
        assert scenario_errors(data, check_budgets=False) == []


class TestBudgetFeasibility:
    def test_over_sram_pairing_rejected(self):
        # MBNETV2-L's peak SRAM is ~3x the small board's 128 KiB.
        data = _minimal(
            targets=[
                {"name": "t0", "device": "STM32F446RE", "model": "mbnetv2-kws-l"}
            ]
        )
        errors = scenario_errors(data)
        assert len(errors) == 1
        assert errors[0].startswith("targets[0]:")
        assert "SRAM" in errors[0]

    def test_infeasible_latency_budget_rejected(self):
        data = _minimal(
            targets=[
                {
                    "name": "t0",
                    "device": "STM32F446RE",
                    "model": "micronet-kws-s",
                    "latency_ms": 1.0,  # modeled latency is ~275 ms
                }
            ]
        )
        errors = scenario_errors(data)
        assert len(errors) == 1
        assert errors[0].startswith("targets[0].latency_ms:")
        assert "ops" in errors[0]

    def test_feasible_pairing_accepted(self):
        data = _minimal(
            targets=[
                {
                    "name": "t0",
                    "device": "STM32F446RE",
                    "model": "micronet-kws-s",
                    "latency_ms": 400,
                }
            ]
        )
        assert scenario_errors(data) == []

    def test_load_scenario_raises_config_error_with_paths(self, tmp_path):
        path = _write_spec(
            tmp_path,
            _minimal(
                targets=[
                    {"name": "t", "device": "STM32F446RE", "model": "mbnetv2-kws-l"}
                ]
            ),
        )
        with pytest.raises(ConfigError, match=r"targets\[0\]"):
            load_scenario(path)


class TestConfigErrorHierarchy:
    def test_traffic_validation_raises_config_error(self):
        with pytest.raises(ConfigError):
            TrafficConfig(requests=0, mean_rate_hz=5.0)

    def test_config_error_is_repro_error_not_graph_error(self):
        with pytest.raises(ConfigError) as excinfo:
            TrafficConfig(requests=10, mean_rate_hz=-1.0)
        assert isinstance(excinfo.value, ReproError)
        assert not isinstance(excinfo.value, GraphError)


class TestShippedSpecs:
    def test_every_shipped_spec_validates(self, repo_yaml_specs):
        assert repo_yaml_specs, "no .yaml specs shipped?"
        for path in repo_yaml_specs:
            spec = load_scenario(path)  # raises ConfigError on any violation
            compile_scenario(spec)

    def test_builtin_names_resolve(self):
        for name in ("table1_devices", "fig7_kws_pareto", "fleet_mixed"):
            assert resolve_spec_path(name) is not None
        assert resolve_spec_path("no_such_spec") is None


@pytest.fixture
def repo_yaml_specs():
    """Every .yaml/.yml file in the repo — all must be valid scenario specs."""
    import pathlib

    root = pathlib.Path(__file__).resolve().parent.parent
    return sorted(
        str(p)
        for pattern in ("*.yaml", "*.yml")
        for p in root.rglob(pattern)
        if ".git" not in p.parts
    )


class TestCompileToPlanParity:
    def test_table1_spec_matches_experiment(self):
        from repro.experiments import table1_devices

        spec = load_scenario(resolve_spec_path("table1_devices"))
        plan = compile_scenario(spec)
        assert len(plan.experiments) == 1
        result = run_plan(plan.experiments[0])
        reference = table1_devices.run()
        assert result.columns == reference.columns
        assert result.rows == reference.rows

    def test_fig7_spec_footprints_match_direct_computation(self):
        from repro.hw.devices import MEDIUM, SMALL
        from repro.hw.latency import LatencyModel
        from repro.models.spec import arch_workload, export_graph
        from repro.runtime import memory_report
        from repro.runtime.deploy import deployment_report
        from repro.spec import modelzoo

        spec = load_scenario(resolve_spec_path("fig7_kws_pareto"))
        plan = compile_scenario(spec)
        result = run_plan(plan.experiments[0])
        assert result.failures == []
        assert [row["model"] for row in result.rows] == [
            "MicroNet-KWS-S", "MicroNet-KWS-M", "MicroNet-KWS-L",
            "DSCNN-S", "DSCNN-M", "DSCNN-L",
            "MBNETV2-S", "MBNETV2-M", "MBNETV2-L",
        ]  # fig7's comparison set, in fig7's order
        latency_model = LatencyModel(MEDIUM)
        by_model = {row["model"]: row for row in result.rows}
        for slug in ("micronet-kws-s", "mbnetv2-kws-l"):
            arch = modelzoo.build_arch(slug)
            graph = export_graph(arch, bits=8)
            memory = memory_report(graph)
            row = by_model[arch.name]
            assert row["accuracy_pct"] is None  # footprint-only spec
            assert row["flash_kb"] == memory.model_flash_bytes / 1024
            assert row["sram_kb"] == memory.total_sram / 1024
            assert row["latency_m_s"] == latency_model.model_latency(
                arch_workload(arch)
            )
            assert row["fits_small"] == deployment_report(graph, SMALL).deployable
            assert row["fits_medium"] == deployment_report(graph, MEDIUM).deployable
        # The paper's headline infeasibility: MBNETV2-L fits neither board.
        assert by_model["MBNETV2-L"]["fits_small"] is False
        assert by_model["MBNETV2-L"]["fits_medium"] is False
        assert by_model["MicroNet-KWS-S"]["fits_small"] is True


def _tiny_fleet_spec() -> dict:
    return _minimal(
        targets=[
            {
                "name": "edge",
                "device": "STM32F446RE",
                "model": "fc-autoencoder-baseline",
                "bits": 8,
            }
        ],
        traffic=[
            {
                "name": "quiet",
                "requests": 8,
                "mean_rate_hz": 4.0,
                "deadline_ms": 500,
                "payload_pool": 4,
                "seed": 3,
            }
        ],
        fleet=[
            {
                "name": "tiny",
                "seed": 9,
                "groups": [
                    {"name": "g0", "target": "edge", "count": 5, "traffic": "quiet"}
                ],
            }
        ],
    )


class TestFleetSimulation:
    def test_fleet_run_is_deterministic(self, tmp_path):
        path = _write_spec(tmp_path, _tiny_fleet_spec())
        plan = compile_scenario(load_scenario(path))
        first = run_fleet_plan(plan.fleets[0])
        second = run_fleet_plan(plan.fleets[0])
        assert first.failures == [] and second.failures == []
        assert first.rows == second.rows

    def test_fleet_row_shape_and_accounting(self, tmp_path):
        path = _write_spec(tmp_path, _tiny_fleet_spec())
        plan = compile_scenario(load_scenario(path))
        assert plan.fleets[0].total_nodes == 5
        result = run_fleet_plan(plan.fleets[0])
        assert len(result.rows) == 1
        row = result.rows[0]
        assert row["nodes"] == 5
        assert row["node_requests"] == 8
        assert row["p50_ms"] > 0
        assert row["drain_s"] > 0
        assert 0.0 <= row["shed_pct"] <= 100.0

    def test_schedule_heap_matches_naive_reference(self):
        """The heapq least-loaded scheduler must assign identically to the
        original O(n*w) min-scan (ties by worker id)."""
        from repro.nas.fabric.schedule import simulate_schedule

        rng = np.random.default_rng(17)
        timeline = [
            [(i, float(d)) for i, d in enumerate(rng.uniform(0.1, 2.0, 23))],
            [(i + 23, float(d)) for i, d in enumerate(rng.uniform(0.1, 2.0, 9))],
        ]
        for workers in (1, 3, 7):
            got = simulate_schedule(timeline, workers, generation_overhead_s=0.5)
            # Naive reference, as the scheduler was originally written.
            clock, completion = 0.0, {}
            for generation in timeline:
                clock += 0.5
                loads = [clock] * workers
                for index, duration in generation:
                    slot = min(range(workers), key=lambda w: (loads[w], w))
                    loads[slot] += duration
                    completion[index] = loads[slot]
                clock = max(loads)
            assert got.makespan_s == clock
            assert got.completion_s == completion


class TestSpecCLI:
    def test_validate_builtin_ok(self, capsys):
        from repro.__main__ import main

        assert main(["spec", "validate", "table1_devices"]) == 0
        out = capsys.readouterr().out
        assert "OK" in out and "table1" in out

    def test_validate_rejects_bad_spec(self, tmp_path, capsys):
        from repro.__main__ import main

        path = _write_spec(
            tmp_path,
            _minimal(
                targets=[{"name": "t", "device": "nope", "model": "micronet-kws-s"}]
            ),
        )
        assert main(["spec", "validate", path]) == 1
        err = capsys.readouterr().err
        assert "REJECTED" in err
        assert "targets[0].device" in err

    def test_missing_spec_is_usage_error(self, capsys):
        from repro.__main__ import main

        assert main(["spec", "validate", "does_not_exist"]) == 2
        assert "no such spec" in capsys.readouterr().err

    def test_spec_run_prints_table(self, capsys):
        from repro.__main__ import main

        assert main(["spec", "run", "table1_devices", "--no-save"]) == 0
        out = capsys.readouterr().out
        assert "STM32F446RE" in out
        assert "STM32F767ZI" in out
