"""End-to-end integration: the full MicroNets pipeline on a tiny problem.

Covers the complete story in one flow: DNAS search → extract → train with
QAT → quantize + serialize → deserialize → integer inference → deployment
verdicts — the library's equivalent of flashing a board and running it.
"""

import numpy as np
import pytest

from repro.hw.devices import SMALL
from repro.models.spec import arch_workload, build_module, export_graph
from repro.nas import DSCNNSupernet, ResourceBudget, SearchConfig, search
from repro.nn import accuracy
from repro.runtime import Interpreter, deserialize, serialize
from repro.runtime.deploy import deployment_report
from repro.tasks.common import TrainConfig, train_classifier, predict


@pytest.fixture(scope="module")
def tiny_task():
    """A small 4-class spatial-pattern task, train and test splits."""
    rng = np.random.default_rng(0)

    def make(n, seed):
        r = np.random.default_rng(seed)
        x = r.normal(size=(n, 16, 8, 1)).astype(np.float32) * 0.4
        y = (np.arange(n) % 4).astype(np.int64)
        rows = np.arange(16)[:, None]
        cols = np.arange(8)[None, :]
        patterns = [
            ((rows % 2) == 0) * 1.0,
            ((cols % 2) == 0) * 1.0,
            (((rows + cols) % 2) == 0) * 1.0,
            ((rows % 4) < 2) * 1.0,
        ]
        for i, label in enumerate(y):
            x[i, :, :, 0] += patterns[label]
        return x.astype(np.float32), y

    return make(160, 1), make(80, 2)


def test_full_micronets_pipeline(tiny_task):
    (x_train, y_train), (x_test, y_test) = tiny_task

    # 1. DNAS under a deliberately tight budget.
    supernet = DSCNNSupernet(
        input_shape=(16, 8, 1), num_classes=4,
        stem_options=[8, 16], num_blocks=2, block_options=[8, 16],
        stem_kernel=(4, 4), stem_stride=(2, 2), rng=0,
    )
    budget = ResourceBudget(params=6_000, activation_bytes=4_096, ops=1_000_000)
    outcome = search(
        supernet, x_train, y_train, budget,
        SearchConfig(epochs=4, warmup_epochs=1, batch_size=32), rng=0,
        arch_name="it-micronet",
    )
    arch = outcome.arch
    workload = arch_workload(arch)
    assert workload.params <= budget.params * 1.5  # extraction is argmax, allow slack

    # 2. Train the extracted architecture with QAT.
    config = TrainConfig(epochs=15, batch_size=32, lr_max=0.02, qat_bits=8)
    module = train_classifier(arch, x_train, y_train, config, rng=3)
    float_acc = accuracy(predict(module, x_test), y_test)
    assert float_acc > 0.6  # chance is 0.25

    # 3. Quantize, serialize, round-trip, run integer inference.
    graph = export_graph(arch, module, calibration=x_train[:64], bits=8)
    buf = serialize(graph)
    restored = deserialize(buf)
    int8_out = Interpreter(restored).invoke(x_test)
    int8_acc = accuracy(int8_out, y_test)
    assert int8_acc > float_acc - 0.15  # quantization costs little

    # 4. Deployment: the tiny model must fit the smallest board.
    report = deployment_report(restored, SMALL)
    assert report.deployable
    assert report.latency_s < 0.1  # ~1M ops is fast even on the M4
    assert report.memory.model_flash_bytes == pytest.approx(len(buf))


def test_pipeline_reproducible(tiny_task):
    """Same seeds → byte-identical serialized models."""
    (x_train, y_train), _ = tiny_task
    from repro.models.spec import ArchSpec, ConvSpec, DenseSpec, GlobalPoolSpec

    arch = ArchSpec(
        "repro-check", (16, 8, 1),
        (ConvSpec(8, 3, stride=2), GlobalPoolSpec(), DenseSpec(4)),
    )

    def build_once():
        config = TrainConfig(epochs=2, batch_size=32, qat_bits=8)
        module = train_classifier(arch, x_train, y_train, config, rng=42)
        return serialize(export_graph(arch, module, calibration=x_train[:32], bits=8))

    assert build_once() == build_once()


def test_int4_pipeline(tiny_task):
    """4-bit weights/activations: smaller file, still better than chance."""
    (x_train, y_train), (x_test, y_test) = tiny_task
    from repro.models.spec import ArchSpec, ConvSpec, DenseSpec, GlobalPoolSpec

    arch = ArchSpec(
        "int4-check", (16, 8, 1),
        (ConvSpec(16, 3, stride=2), ConvSpec(16, 3), GlobalPoolSpec(), DenseSpec(4)),
    )
    config = TrainConfig(epochs=15, batch_size=32, lr_max=0.02, qat_bits=4)
    module = train_classifier(arch, x_train, y_train, config, rng=0)
    g8 = export_graph(arch, module, calibration=x_train[:64], bits=8)
    g4 = export_graph(arch, module, calibration=x_train[:64], bits=4)
    assert len(serialize(g4)) < len(serialize(g8))
    acc4 = accuracy(Interpreter(g4).invoke(x_test), y_test)
    assert acc4 > 0.4
