"""Interpreter kernel coverage: every op kind executes in both modes."""

import numpy as np
import pytest

from repro.models import spec as S
from repro.models.spec import (
    ArchSpec,
    ConvSpec,
    DenseSpec,
    DWConvSpec,
    FlattenSpec,
    GlobalPoolSpec,
    PoolSpec,
    ResidualSpec,
)
from repro.runtime import Interpreter
from repro.tensor import Tensor

#: One architecture exercising every interpreter op kind.
FULL_OP_ARCH = ArchSpec(
    name="all-ops",
    input_shape=(12, 12, 1),
    layers=(
        ConvSpec(8, 3, stride=1),
        PoolSpec("max", 2, 2),
        ResidualSpec(
            body=(DWConvSpec(3, 1), ConvSpec(8, 1)),
            shortcut="identity",
            activation="relu",
        ),
        PoolSpec("avg", 2, 2),
        FlattenSpec(),
        DenseSpec(16, activation="relu"),
        DenseSpec(4),
    ),
    include_softmax=True,
)


@pytest.fixture(scope="module")
def trained():
    rng = np.random.default_rng(0)
    batch = rng.normal(size=(12, 12, 12, 1)).astype(np.float32)
    module = S.build_module(FULL_OP_ARCH, rng=1)
    module.train()
    module(Tensor(batch))  # move BN stats
    module.eval()
    return module, batch


class TestAllOpsGraph:
    def test_float_matches_module(self, trained):
        module, batch = trained
        graph = S.export_float_graph(FULL_OP_ARCH, module)
        assert sorted(graph.op_kinds()) == sorted(
            ["conv2d", "depthwise_conv2d", "dense", "avg_pool", "max_pool",
             "global_avg_pool", "add", "softmax", "reshape"]
        ) or "global_avg_pool" not in graph.op_kinds()
        out = Interpreter(graph).invoke(batch)
        logits = module(Tensor(batch)).data  # module stops at logits;
        shifted = logits - logits.max(axis=1, keepdims=True)
        expected = np.exp(shifted) / np.exp(shifted).sum(axis=1, keepdims=True)
        assert np.abs(out - expected).max() < 1e-3

    def test_float_softmax_normalized(self, trained):
        module, batch = trained
        graph = S.export_float_graph(FULL_OP_ARCH, module)
        out = Interpreter(graph).invoke(batch)
        assert np.allclose(out.sum(axis=1), 1.0, atol=1e-4)

    def test_int8_probabilities_agree(self, trained):
        module, batch = trained
        float_graph = S.export_float_graph(FULL_OP_ARCH, module)
        q_graph = S.quantize_graph(float_graph, calibration=batch, bits=8)
        float_out = Interpreter(float_graph).invoke(batch)
        q_out = Interpreter(q_graph).invoke(batch)
        # int8 softmax grid is 1/256; argmax agreement is the bar.
        agreement = (float_out.argmax(1) == q_out.argmax(1)).mean()
        assert agreement >= 0.7

    def test_int8_output_on_softmax_grid(self, trained):
        module, batch = trained
        float_graph = S.export_float_graph(FULL_OP_ARCH, module)
        q_graph = S.quantize_graph(float_graph, calibration=batch, bits=8)
        out = Interpreter(q_graph).invoke(batch)
        assert out.min() >= -1e-6
        assert out.max() <= 1.0 + 1e-6

    def test_workload_lowering_covers_ops(self):
        workload = S.arch_workload(FULL_OP_ARCH)
        kinds = {l.kind for l in workload.layers}
        assert {"conv2d", "depthwise_conv2d", "dense", "max_pool", "avg_pool",
                "add", "softmax"} <= kinds

    def test_serializer_roundtrip_all_ops(self, trained):
        module, batch = trained
        from repro.runtime import deserialize, serialize

        q_graph = S.export_graph(FULL_OP_ARCH, module, calibration=batch, bits=8)
        restored = deserialize(serialize(q_graph))
        a = Interpreter(q_graph).invoke(batch)
        b = Interpreter(restored).invoke(batch)
        assert np.array_equal(a, b)
