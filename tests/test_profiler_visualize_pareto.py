"""Profiler, memory visualization and Pareto utilities."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.hw.devices import MEDIUM, SMALL
from repro.hw.profiler import profile_model
from repro.models.micronets import micronet_kws_s
from repro.models.spec import arch_workload, export_graph
from repro.nas.pareto import (
    ModelPoint,
    dominated_pairs,
    hypervolume_2d,
    pareto_front,
    points_from_rows,
)
from repro.runtime.visualize import render_arena_timeline, render_memory_map


@pytest.fixture(scope="module")
def kws_workload():
    return arch_workload(micronet_kws_s())


@pytest.fixture(scope="module")
def kws_graph():
    return export_graph(micronet_kws_s(), bits=8)


class TestProfiler:
    def test_layer_latencies_sum_to_total(self, kws_workload):
        profile = profile_model(kws_workload, MEDIUM)
        assert sum(l.latency_s for l in profile.layers) == pytest.approx(
            profile.total_latency_s
        )

    def test_percentages_sum_to_100(self, kws_workload):
        profile = profile_model(kws_workload, MEDIUM)
        assert sum(l.percent for l in profile.layers) == pytest.approx(100.0)

    def test_by_kind_fractions(self, kws_workload):
        profile = profile_model(kws_workload, MEDIUM)
        shares = profile.by_kind()
        assert sum(shares.values()) == pytest.approx(1.0)
        # Pointwise convs dominate a DS-CNN's latency.
        assert shares["conv2d"] > 0.5

    def test_hottest_sorted(self, kws_workload):
        profile = profile_model(kws_workload, MEDIUM)
        hottest = profile.hottest(3)
        assert len(hottest) == 3
        assert hottest[0].latency_s >= hottest[1].latency_s >= hottest[2].latency_s

    def test_render_contains_layers(self, kws_workload):
        text = profile_model(kws_workload, MEDIUM).render()
        assert "conv2d" in text and "ms" in text and "%" in text

    def test_device_changes_latency_not_structure(self, kws_workload):
        p_small = profile_model(kws_workload, SMALL)
        p_medium = profile_model(kws_workload, MEDIUM)
        assert len(p_small.layers) == len(p_medium.layers)
        assert p_small.total_latency_s > p_medium.total_latency_s


class TestVisualize:
    def test_memory_map_renders(self, kws_graph):
        text = render_memory_map(kws_graph, SMALL)
        assert "SRAM" in text and "FLASH" in text
        assert "verdict: fits" in text

    def test_memory_map_flags_misfit(self):
        from repro.models.micronets import micronet_kws_l

        graph = export_graph(micronet_kws_l(), bits=8)
        assert "DOES NOT FIT" in render_memory_map(graph, SMALL)

    def test_arena_timeline_rows(self, kws_graph):
        text = render_arena_timeline(kws_graph)
        from repro.runtime import plan_arena

        plan = plan_arena(kws_graph)
        # one header + one row per allocation
        assert len(text.splitlines()) == 1 + len(plan.allocations)
        assert "#" in text


class TestPareto:
    def _points(self):
        return [
            ModelPoint("good", score=0.9, costs=(10.0, 100.0)),
            ModelPoint("cheap", score=0.7, costs=(2.0, 30.0)),
            ModelPoint("dominated", score=0.6, costs=(12.0, 120.0)),
            ModelPoint("balanced", score=0.8, costs=(5.0, 60.0)),
        ]

    def test_dominance(self):
        a = ModelPoint("a", 0.9, (1.0,))
        b = ModelPoint("b", 0.8, (2.0,))
        assert a.dominates(b)
        assert not b.dominates(a)

    def test_equal_points_do_not_dominate(self):
        a = ModelPoint("a", 0.5, (1.0,))
        b = ModelPoint("b", 0.5, (1.0,))
        assert not a.dominates(b)
        assert not b.dominates(a)

    def test_dimension_mismatch(self):
        with pytest.raises(ReproError):
            ModelPoint("a", 1.0, (1.0,)).dominates(ModelPoint("b", 1.0, (1.0, 2.0)))

    def test_front_extraction(self):
        front = pareto_front(self._points())
        names = [p.name for p in front]
        assert "dominated" not in names
        assert set(names) == {"good", "balanced", "cheap"}
        assert names[0] == "good"  # sorted by score

    def test_dominated_pairs(self):
        pairs = dominated_pairs(self._points())
        assert ("dominated", "good") in pairs
        assert all(d == "dominated" for d, _ in pairs)

    def test_hypervolume_grows_with_better_points(self):
        base = self._points()
        hv_base = hypervolume_2d(base, cost_index=0, reference_cost=15.0)
        improved = base + [ModelPoint("super", score=0.95, costs=(1.0, 10.0))]
        hv_improved = hypervolume_2d(improved, cost_index=0, reference_cost=15.0)
        assert hv_improved > hv_base

    def test_hypervolume_empty(self):
        assert hypervolume_2d([]) == 0.0

    def test_points_from_rows_skips_missing(self):
        rows = [
            {"model": "a", "acc": 0.9, "lat": 1.0, "mem": 2.0},
            {"model": "b", "acc": None, "lat": 1.0, "mem": 2.0},
            {"model": "c", "acc": 0.8, "lat": None, "mem": 2.0},
        ]
        points = points_from_rows(rows, "model", "acc", ["lat", "mem"])
        assert [p.name for p in points] == ["a"]

    def test_nan_point_rejected_at_construction(self):
        # NaN compares false against everything, so a NaN point could never
        # be dominated and would sit on every front. Construction must fail.
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="non-finite"):
            ModelPoint("broken", score=float("nan"), costs=(1.0,))
        with pytest.raises(ReproError, match="non-finite"):
            ModelPoint("broken", score=0.9, costs=(float("inf"), 1.0))

    def test_points_from_rows_routes_nonfinite_to_infeasible(self):
        rows = [
            {"model": "a", "acc": 0.9, "lat": 1.0, "mem": 2.0},
            {"model": "b", "acc": float("nan"), "lat": 1.0, "mem": 2.0},
            {"model": "c", "acc": 0.8, "lat": float("inf"), "mem": 2.0},
            {"model": "d", "acc": None, "lat": 1.0, "mem": 2.0},
        ]
        infeasible = []
        points = points_from_rows(rows, "model", "acc", ["lat", "mem"],
                                  infeasible=infeasible)
        assert [p.name for p in points] == ["a"]
        assert [row["model"] for row in infeasible] == ["b", "c", "d"]

    def test_fig7_rows_have_no_dominated_micronets(self):
        """Wire the utility into the archived fig7 result if present."""
        import os

        path = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "benchmarks", "results", "fig7.txt",
        )
        if not os.path.exists(path):
            pytest.skip("fig7 results not generated yet")
        # Structural smoke only: file exists and mentions MicroNets.
        content = open(path).read()
        assert "MicroNet-KWS-S" in content
