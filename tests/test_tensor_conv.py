"""Convolution kernels: reference-checked forwards and gradient checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.tensor import Tensor, functional as F
from repro.tensor import conv as C
from tests.conftest import numeric_gradient


def naive_conv2d(x, w, stride, padding):
    """Triple-loop reference convolution (NHWC, TF padding)."""
    sh, sw = C.as_pair(stride)
    kh, kw = w.shape[:2]
    pad_h, pad_w = C.resolve_padding(x.shape[1], x.shape[2], kh, kw, stride, padding)
    xp = np.pad(x, ((0, 0), pad_h, pad_w, (0, 0)))
    n = x.shape[0]
    oh = (xp.shape[1] - kh) // sh + 1
    ow = (xp.shape[2] - kw) // sw + 1
    out = np.zeros((n, oh, ow, w.shape[3]), dtype=np.float64)
    for b in range(n):
        for i in range(oh):
            for j in range(ow):
                patch = xp[b, i * sh : i * sh + kh, j * sw : j * sw + kw, :]
                for f in range(w.shape[3]):
                    out[b, i, j, f] = (patch * w[:, :, :, f]).sum()
    return out.astype(np.float32)


class TestPadding:
    def test_same_padding_stride1(self):
        assert C.same_padding(10, 3, 1) == (1, 1)

    def test_same_padding_even_kernel(self):
        before, after = C.same_padding(10, 4, 2)
        assert before <= after  # TF puts the extra pixel at the end
        assert before + after == 4 - 2

    def test_valid_padding(self):
        assert C.resolve_padding(8, 8, 3, 3, 1, "valid") == ((0, 0), (0, 0))

    def test_unknown_padding_raises(self):
        with pytest.raises(ShapeError):
            C.resolve_padding(8, 8, 3, 3, 1, "reflect")

    @given(size=st.integers(4, 30), kernel=st.integers(1, 5), stride=st.integers(1, 3))
    @settings(max_examples=60, deadline=None)
    def test_same_output_size_is_ceil(self, size, kernel, stride):
        assert C.conv_output_size(size, kernel, stride, "same") == -(-size // stride)

    @given(size=st.integers(6, 30), kernel=st.integers(1, 5), stride=st.integers(1, 3))
    @settings(max_examples=60, deadline=None)
    def test_valid_output_size(self, size, kernel, stride):
        expected = (size - kernel) // stride + 1
        assert C.conv_output_size(size, kernel, stride, "valid") == expected

    def test_as_pair(self):
        assert C.as_pair(3) == (3, 3)
        assert C.as_pair((2, 1)) == (2, 1)
        with pytest.raises(ShapeError):
            C.as_pair((1, 2, 3))


class TestConvForward:
    @pytest.mark.parametrize("stride", [1, 2, (2, 1)])
    @pytest.mark.parametrize("padding", ["same", "valid"])
    def test_matches_naive(self, rng, stride, padding):
        x = rng.normal(size=(2, 7, 6, 3)).astype(np.float32)
        w = rng.normal(size=(3, 3, 3, 4)).astype(np.float32)
        out, _ = C.conv2d_forward(x, w, stride, padding)
        expected = naive_conv2d(x, w, stride, padding)
        assert out.shape == expected.shape
        assert np.allclose(out, expected, atol=1e-4)

    def test_asymmetric_kernel(self, rng):
        x = rng.normal(size=(1, 12, 5, 1)).astype(np.float32)
        w = rng.normal(size=(10, 4, 1, 8)).astype(np.float32)
        out, _ = C.conv2d_forward(x, w, (2, 1), "same")
        assert out.shape == (1, 6, 5, 8)
        assert np.allclose(out, naive_conv2d(x, w, (2, 1), "same"), atol=1e-4)

    def test_channel_mismatch_raises(self, rng):
        x = rng.normal(size=(1, 5, 5, 3)).astype(np.float32)
        w = rng.normal(size=(3, 3, 4, 2)).astype(np.float32)
        with pytest.raises(ShapeError):
            C.conv2d_forward(x, w, 1, "same")

    def test_depthwise_matches_grouped_naive(self, rng):
        x = rng.normal(size=(2, 6, 6, 3)).astype(np.float32)
        w = rng.normal(size=(3, 3, 3)).astype(np.float32)
        out, _ = C.depthwise_conv2d_forward(x, w, 1, "same")
        # Depthwise equals per-channel conv2d with diagonal filters.
        for c in range(3):
            wc = np.zeros((3, 3, 1, 1), dtype=np.float32)
            wc[:, :, 0, 0] = w[:, :, c]
            ref = naive_conv2d(x[:, :, :, c : c + 1], wc, 1, "same")
            assert np.allclose(out[:, :, :, c : c + 1], ref, atol=1e-4)

    def test_depthwise_bad_weight_rank(self, rng):
        x = rng.normal(size=(1, 5, 5, 3)).astype(np.float32)
        with pytest.raises(ShapeError):
            C.depthwise_conv2d_forward(x, np.zeros((3, 3, 3, 1), np.float32), 1, "same")


class TestConvGradients:
    @pytest.mark.parametrize("stride,padding", [(1, "same"), (2, "same"), (2, "valid"), ((2, 1), "same")])
    def test_conv2d_grad(self, rng, stride, padding):
        x = Tensor(rng.normal(size=(2, 6, 5, 2)), requires_grad=True)
        w = Tensor(rng.normal(size=(3, 3, 2, 3)), requires_grad=True)

        def loss():
            out, _ = C.conv2d_forward(x.data, w.data, stride, padding)
            return float((out**2).sum())

        (F.conv2d(x, w, stride, padding) ** 2).sum().backward()
        gx = numeric_gradient(loss, x.data)
        gw = numeric_gradient(loss, w.data)
        assert np.abs(gx - x.grad).max() / (np.abs(gx).max() + 1e-6) < 2e-2
        assert np.abs(gw - w.grad).max() / (np.abs(gw).max() + 1e-6) < 2e-2

    @pytest.mark.parametrize("stride", [1, 2, (2, 1)])
    def test_depthwise_grad(self, rng, stride):
        x = Tensor(rng.normal(size=(2, 5, 5, 3)), requires_grad=True)
        w = Tensor(rng.normal(size=(3, 3, 3)), requires_grad=True)

        def loss():
            out, _ = C.depthwise_conv2d_forward(x.data, w.data, stride, "same")
            return float((out**2).sum())

        (F.depthwise_conv2d(x, w, stride, "same") ** 2).sum().backward()
        gx = numeric_gradient(loss, x.data)
        gw = numeric_gradient(loss, w.data)
        assert np.abs(gx - x.grad).max() / (np.abs(gx).max() + 1e-6) < 2e-2
        assert np.abs(gw - w.grad).max() / (np.abs(gw).max() + 1e-6) < 2e-2


class TestPooling:
    def test_avg_pool_value(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 4, 4, 1)
        out = C.avg_pool2d_forward(x, 2, 2, "valid")
        assert np.allclose(out[0, :, :, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_avg_pool_grad_distributes(self, rng):
        x = Tensor(rng.normal(size=(1, 4, 4, 2)), requires_grad=True)
        F.avg_pool2d(x, 2, 2).sum().backward()
        assert np.allclose(x.grad, 0.25)

    def test_max_pool_value_and_grad(self):
        x = Tensor(np.array([[1.0, 2.0], [4.0, 3.0]]).reshape(1, 2, 2, 1), requires_grad=True)
        out = F.max_pool2d(x, 2, 2)
        assert out.data.reshape(()) == 4.0
        out.sum().backward()
        assert np.allclose(x.grad.reshape(2, 2), [[0, 0], [1, 0]])

    def test_max_pool_same_padding_ignores_pad(self):
        x = np.full((1, 3, 3, 1), -5.0, dtype=np.float32)
        out, _ = C.max_pool2d_forward(x, 2, 2, "same")
        # Padding must never win the max even with negative inputs.
        assert (out == -5.0).all()

    def test_global_avg_pool(self, rng):
        x = rng.normal(size=(2, 4, 4, 3)).astype(np.float32)
        out = F.global_avg_pool(Tensor(x))
        assert out.shape == (2, 3)
        assert np.allclose(out.data, x.mean(axis=(1, 2)), atol=1e-6)

    def test_global_avg_pool_requires_4d(self):
        with pytest.raises(ShapeError):
            F.global_avg_pool(Tensor(np.ones((2, 3))))

    @given(
        h=st.integers(2, 8),
        w=st.integers(2, 8),
        pool=st.integers(1, 3),
    )
    @settings(max_examples=40, deadline=None)
    def test_avg_pool_of_constant_is_constant(self, h, w, pool):
        if pool > min(h, w):
            return
        x = np.full((1, h, w, 1), 3.5, dtype=np.float32)
        out = C.avg_pool2d_forward(x, pool, pool, "valid")
        assert np.allclose(out, 3.5, atol=1e-6)


class TestPadAndResize:
    def test_pad2d(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 2, 1)), requires_grad=True)
        out = F.pad2d(x, (1, 1, 2, 0))
        assert out.shape == (1, 4, 4, 1)
        out.sum().backward()
        assert np.allclose(x.grad, 1.0)

    def test_resize_bilinear_identity(self, rng):
        x = rng.normal(size=(1, 4, 4, 2)).astype(np.float32)
        out = F.resize_bilinear(Tensor(x), 4, 4)
        assert np.allclose(out.data, x, atol=1e-5)

    def test_resize_bilinear_constant(self):
        x = np.full((1, 6, 6, 1), 2.0, dtype=np.float32)
        out = F.resize_bilinear(Tensor(x), 3, 3)
        assert np.allclose(out.data, 2.0, atol=1e-5)
