"""Distributed NAS search fabric: the determinism and crash-recovery harness.

The contract under test (docs/search_fabric.md): for the same searcher
settings, seed and oracle, a fabric sweep produces a **bitwise identical**
result and Pareto front regardless of

* how many workers evaluate it (serial, permuted serial, N-process pool),
* the order evaluations *complete* in (only dispatch order matters),
* how many times the fleet is killed and resumed mid-sweep.

The enabling invariant is per-candidate seeding: every candidate's RNG
stream is a pure function of ``(sweep seed, dispatch index)``, never a draw
from a shared generator whose position depends on scheduling.
"""

import json
import os

import numpy as np
import pytest

from repro import obs
from repro.errors import CheckpointError
from repro.nas.blackbox import (
    DSCNNSearchSpace,
    EvalOutcome,
    EvalRequest,
    EvolutionarySearch,
    RandomSearch,
    candidate_rng,
    derive_sweep_seed,
    run_eval_request,
)
from repro.nas.budgets import ResourceBudget, clear_profile_cache, resource_profile
from repro.nas.fabric import (
    MiniTaskOracle,
    MultiprocessExecutor,
    ResultJournal,
    SerialExecutor,
    SharedResultStore,
    run_sweep,
    simulate_schedule,
)
from repro.nas.fabric.store import (
    SHARED_CACHES,
    cache_key_snapshot,
    collect_cache_delta,
    install_cache_delta,
)
from repro.resilience.checkpoint import CheckpointConfig
from repro.resilience.faults import FaultSpec, InjectedFault, inject

pytestmark = [pytest.mark.tier1, pytest.mark.fabric]

#: Worker count for the multiprocess tests (the env knob the docs describe).
WORKERS = int(os.environ.get("REPRO_FABRIC_WORKERS", "4"))

SPACE = DSCNNSearchSpace(
    input_shape=(16, 8, 1), num_classes=4, width_options=(8, 16, 24),
    num_blocks=3, stem_kernel=(4, 4), stem_stride=(2, 2),
)
BUDGET = ResourceBudget(params=60_000, activation_bytes=40_000, ops=4_000_000)


# ----------------------------------------------------------------------
# Oracles (module-level so the fork-pool executor can pickle them)
# ----------------------------------------------------------------------
def param_oracle(arch, rng):
    """Cheap deterministic oracle: profile-derived score + one seeded draw.

    The ``rng.random()`` term is the point: it makes the fitness depend on
    the candidate's stream, so any seeding bug (order-dependent spawning,
    retries resuming mid-stream) shows up as a fitness diff, not a flake.
    """
    return float(resource_profile(arch).params) / 1e5 + float(rng.random())


def flaky_param_oracle(arch, rng):
    """Deterministically fails for a fixed subset of geometries.

    Failure is a property of the *candidate*, not of the attempt or the
    worker — so every executor sees the same EvalFailures with the same
    attempt counts, and parity can assert on them bitwise.
    """
    params = resource_profile(arch).params
    if params % 3 == 0:
        raise ValueError(f"unlucky geometry ({params} params)")
    return float(params) / 1e5 + float(rng.random())


CALL_LOG = []


def logging_param_oracle(arch, rng):
    """param_oracle that records which geometry it was called for."""
    CALL_LOG.append(repr(arch.layers))
    return param_oracle(arch, rng)


def make_searcher(max_evaluations=8):
    return EvolutionarySearch(
        SPACE, BUDGET, max_evaluations=max_evaluations, population_size=4,
        generation_size=4,
    )


def sig(sweep):
    """Everything the bitwise-identity contract covers, as one tuple."""
    result = sweep.result
    return (
        result.evaluations,
        result.proposed,
        result.best_fitness,
        tuple(result.history),
        tuple((f.genome, f.error, f.attempts) for f in result.failures),
        tuple((p.name, p.score, p.costs) for p in sweep.front),
    )


# ----------------------------------------------------------------------
# Per-candidate seeding: the invariant everything else rests on
# ----------------------------------------------------------------------
class TestCandidateSeeding:
    def test_streams_pinned(self):
        # Regression pin: these exact values are what (seed=123, index) must
        # produce forever — a change here silently breaks every recorded
        # sweep's reproducibility, so the assertion is on raw draws.
        expected = {
            0: [0.30667173728665753, 0.17110903667368538, 0.32694909327616295],
            1: [0.7771631424527187, 0.23787130085493213, 0.42018144544151026],
            7: [0.2157494638121462, 0.5879675013814348, 0.06502885413326143],
        }
        for index, values in expected.items():
            stream = candidate_rng(123, index)
            assert [float(stream.random()) for _ in range(3)] == values

    def test_stream_is_pure_function_of_seed_and_index(self):
        # Creating (or draining) other candidates' streams must not shift
        # candidate 3's — this is exactly the bug class where workers share
        # a generator and fitness depends on completion order.
        lone = candidate_rng(9, 3).random(5)
        for index in (0, 1, 2, 4):
            candidate_rng(9, index).random(100)
        crowded = candidate_rng(9, 3).random(5)
        np.testing.assert_array_equal(lone, crowded)
        assert candidate_rng(9, 3).random() != candidate_rng(9, 4).random()
        assert candidate_rng(8, 3).random() != candidate_rng(9, 3).random()

    def test_derive_sweep_seed(self):
        assert derive_sweep_seed(42) == 42
        assert derive_sweep_seed(None) == 0
        generator = np.random.default_rng(5)
        first = derive_sweep_seed(generator)
        # Deriving is stable and must NOT consume a draw from the caller.
        assert derive_sweep_seed(generator) == first
        assert generator.random() == np.random.default_rng(5).random()

    def test_retried_success_is_bitwise_equal(self):
        # A candidate that fails twice then succeeds gets the SAME stream on
        # the successful attempt as a candidate that succeeds immediately.
        genome = SPACE.random_genome(np.random.default_rng(0))
        request = EvalRequest(index=4, genome=genome, sweep_seed=11,
                              wants_rng=True, max_retries=2)
        attempts = {"n": 0}

        def fails_twice(arch, rng):
            attempts["n"] += 1
            if attempts["n"] <= 2:
                raise RuntimeError("transient")
            return param_oracle(arch, rng)

        clean = run_eval_request(request, SPACE, param_oracle)
        flaky = run_eval_request(request, SPACE, fails_twice)
        assert flaky.attempts == 3 and clean.attempts == 1
        assert flaky.fitness == clean.fitness

    def test_retries_exhausted_degrade_to_failure(self):
        genome = SPACE.random_genome(np.random.default_rng(0))
        request = EvalRequest(index=0, genome=genome, sweep_seed=11,
                              wants_rng=True, max_retries=1, backoff_s=0.5)
        sleeps = []

        def always_fails(arch, rng):
            raise ValueError("doomed")

        outcome = run_eval_request(request, SPACE, always_fails, sleeper=sleeps.append)
        assert outcome.fitness is None
        assert outcome.error == "ValueError: doomed"
        assert outcome.attempts == 2
        assert sleeps == [0.5]  # backoff_s * 2**0 between the two attempts


# ----------------------------------------------------------------------
# Executor parity: serial == permuted serial == N-process pool
# ----------------------------------------------------------------------
class TestExecutorParity:
    def test_permuted_execution_order_is_invisible(self):
        baseline = run_sweep(make_searcher(), param_oracle, rng=5)
        permuted = run_sweep(make_searcher(), param_oracle, rng=5,
                             executor=SerialExecutor(permutation_seed=99))
        assert sig(baseline) == sig(permuted)

    def test_multiprocess_matches_serial(self):
        baseline = run_sweep(make_searcher(), param_oracle, rng=5)
        clear_profile_cache()
        sharded = run_sweep(make_searcher(), param_oracle, rng=5, workers=WORKERS)
        assert sharded.workers == WORKERS
        assert sig(baseline) == sig(sharded)

    def test_parity_holds_through_eval_failures(self):
        # The flaky oracle fails a fixed subset of geometries every attempt:
        # all three executors must record identical EvalFailures (genome,
        # error text, attempt count) and identical surviving history.
        baseline = run_sweep(make_searcher(), flaky_param_oracle, rng=5)
        assert baseline.result.failures, "seed must exercise the failure path"
        permuted = run_sweep(make_searcher(), flaky_param_oracle, rng=5,
                             executor=SerialExecutor(permutation_seed=31))
        clear_profile_cache()
        sharded = run_sweep(make_searcher(), flaky_param_oracle, rng=5,
                            workers=WORKERS)
        assert sig(baseline) == sig(permuted) == sig(sharded)

    def test_outcomes_return_in_request_order(self):
        # Directly at the executor protocol: even with execution order
        # shuffled, outcomes[i] is the result of requests[i].
        rng = np.random.default_rng(2)
        genomes = [SPACE.random_genome(rng) for _ in range(6)]
        requests = [
            EvalRequest(index=i, genome=g, sweep_seed=77, wants_rng=True)
            for i, g in enumerate(genomes)
        ]
        executor = SerialExecutor(permutation_seed=13)
        outcomes = executor.run(requests, SPACE, param_oracle)
        for request, outcome in zip(requests, outcomes):
            expected = param_oracle(
                SPACE.to_arch(request.genome),
                candidate_rng(request.sweep_seed, request.index),
            )
            assert outcome.fitness == expected


# ----------------------------------------------------------------------
# Shared result store: memo caches travel between workers
# ----------------------------------------------------------------------
class TestSharedStore:
    def test_delta_roundtrip(self):
        clear_profile_cache()
        baseline = cache_key_snapshot()
        arch = SPACE.to_arch(SPACE.random_genome(np.random.default_rng(3)))
        resource_profile(arch)
        delta = collect_cache_delta(baseline)
        assert delta.get("resource_profile"), "profiling must produce a delta"
        # Installing into a cache that already has the entries is a no-op...
        assert install_cache_delta(delta) == 0
        # ...and into a cleared cache installs exactly the delta.
        clear_profile_cache()
        assert install_cache_delta(delta) == len(delta["resource_profile"])
        assert SHARED_CACHES["resource_profile"].info().entries >= 1

    def test_store_accounting(self):
        clear_profile_cache()
        store = SharedResultStore()
        snapshot = store.broadcast()
        assert store.broadcasts == 1 and snapshot["resource_profile"] == []
        arch = SPACE.to_arch(SPACE.random_genome(np.random.default_rng(3)))
        resource_profile(arch)
        delta = collect_cache_delta(cache_key_snapshot())
        assert delta == {}  # nothing new since the post-profile snapshot
        clear_profile_cache()
        installed = store.merge(
            {"resource_profile": store.broadcast()["resource_profile"]}
        )
        assert installed == 0  # broadcast of the cleared cache is empty

    def test_workers_import_parent_discoveries(self):
        # Serial: one process, the broadcast is already installed -> 0 hits.
        serial = run_sweep(make_searcher(), param_oracle, rng=5)
        assert serial.shared_cache_hits == 0
        # Sharded: the parent profiles geometries during feasibility checks;
        # workers must import those entries instead of re-deriving them.
        clear_profile_cache()
        sharded = run_sweep(make_searcher(), param_oracle, rng=5, workers=WORKERS)
        assert sharded.shared_cache_hits > 0


# ----------------------------------------------------------------------
# Result journal: the crash-consistency ledger
# ----------------------------------------------------------------------
class TestResultJournal:
    def _request(self, index=0, genome=(0, 1, 2)):
        return EvalRequest(index=index, genome=genome, sweep_seed=1)

    def test_roundtrip_success_and_failure(self, tmp_path):
        journal = ResultJournal(str(tmp_path / "run.journal"))
        journal.append(self._request(0), EvalOutcome(fitness=0.75))
        journal.append(
            self._request(1, genome=(2, 2, 2)),
            EvalOutcome(fitness=None, error="ValueError: doomed", attempts=3),
        )
        records = journal.load()
        assert records == [
            {"index": 0, "genome": [0, 1, 2], "fitness": 0.75,
             "error": None, "attempts": 1},
            {"index": 1, "genome": [2, 2, 2], "fitness": None,
             "error": "ValueError: doomed", "attempts": 3},
        ]
        journal.reset()
        assert journal.load() == []

    def test_torn_trailing_line_is_discarded(self, tmp_path):
        path = tmp_path / "run.journal"
        journal = ResultJournal(str(path))
        journal.append(self._request(0), EvalOutcome(fitness=0.5))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"index": 1, "genome": [0, 0')  # crash mid-append
        records = journal.load()
        assert [r["index"] for r in records] == [0]

    def test_missing_file_loads_empty(self, tmp_path):
        assert ResultJournal(str(tmp_path / "absent.journal")).load() == []


# ----------------------------------------------------------------------
# Kill/resume matrix: every fabric boundary, bitwise-identical recovery
# ----------------------------------------------------------------------
class TestFaultResume:
    SITES = [
        ("fabric_enqueue", 2),
        ("fabric_complete", 1),
        ("fabric_complete", 2),
        ("checkpoint_write", 1),
        ("checkpoint_write", 2),
    ]

    def _golden(self):
        CALL_LOG.clear()
        golden = run_sweep(make_searcher(), logging_param_oracle, rng=5)
        calls = list(CALL_LOG)
        return golden, calls

    @pytest.mark.parametrize("site,at", SITES, ids=[f"{s}@{n}" for s, n in SITES])
    def test_kill_resume_is_bitwise_identical(self, tmp_path, site, at):
        golden, golden_calls = self._golden()
        assert len(set(golden_calls)) == len(golden_calls), "golden run memoizes"

        config = CheckpointConfig(path=str(tmp_path / "run.npz"))
        CALL_LOG.clear()
        with inject(FaultSpec(site=site, at=at)):
            with pytest.raises(InjectedFault):
                run_sweep(make_searcher(), logging_param_oracle, rng=5,
                          checkpoint=config)
        resumed = run_sweep(make_searcher(), logging_param_oracle, rng=5,
                            checkpoint=config)

        assert resumed.resumed is True
        assert sig(resumed) == sig(golden)
        # No candidate is ever evaluated twice across the kill + resume:
        # work the journal captured is replayed, not re-run.
        assert sorted(CALL_LOG) == sorted(golden_calls)
        # Only an enqueue-boundary kill loses nothing to replay (checkpoint
        # and journal agree there); every later boundary must replay.
        assert (resumed.replayed > 0) == (site != "fabric_enqueue")

    def test_resume_of_completed_sweep_is_noop(self, tmp_path):
        config = CheckpointConfig(path=str(tmp_path / "run.npz"))
        first = run_sweep(make_searcher(), param_oracle, rng=5, checkpoint=config)
        again = run_sweep(make_searcher(), param_oracle, rng=5, checkpoint=config)
        assert sig(first) == sig(again)
        assert again.resumed is True
        assert again.evaluated == 0 and again.replayed == 0
        assert again.generations == first.generations

    def test_journal_survives_missing_checkpoint(self, tmp_path):
        # Death after journaling but before the FIRST snapshot: the journal
        # alone must reconstruct the finished work (regression for the
        # lost-journal-before-first-checkpoint bug).
        config = CheckpointConfig(path=str(tmp_path / "run.npz"))
        CALL_LOG.clear()
        finished = run_sweep(make_searcher(), logging_param_oracle, rng=5,
                             checkpoint=config)
        calls = list(CALL_LOG)
        os.remove(config.path)

        CALL_LOG.clear()
        replayed = run_sweep(make_searcher(), logging_param_oracle, rng=5,
                             checkpoint=config)
        assert sig(replayed) == sig(finished)
        assert replayed.resumed is True
        assert replayed.evaluated == 0 and replayed.replayed == len(calls)
        assert CALL_LOG == []  # everything came from the journal

    def test_foreign_journal_fails_loudly(self, tmp_path):
        config = CheckpointConfig(path=str(tmp_path / "run.npz"))
        run_sweep(make_searcher(), param_oracle, rng=5, checkpoint=config)
        os.remove(config.path)
        # A different seed proposes different genomes: replaying this
        # journal would silently mix two runs — it must raise instead.
        with pytest.raises(CheckpointError, match="different run"):
            run_sweep(make_searcher(), param_oracle, rng=6, checkpoint=config)

    def test_resume_false_starts_fresh(self, tmp_path):
        config = CheckpointConfig(path=str(tmp_path / "run.npz"))
        first = run_sweep(make_searcher(), param_oracle, rng=5, checkpoint=config)
        fresh_config = CheckpointConfig(path=config.path, resume=False)
        fresh = run_sweep(make_searcher(), param_oracle, rng=5,
                          checkpoint=fresh_config)
        assert sig(fresh) == sig(first)
        assert fresh.resumed is False
        assert fresh.evaluated == first.evaluated  # really re-ran everything


# ----------------------------------------------------------------------
# Proxy pre-screening riding the fabric, with obs accounting
# ----------------------------------------------------------------------
class TestProxyScreenedSweep:
    def test_screen_reduces_evaluations_deterministically(self):
        searcher = RandomSearch(SPACE, BUDGET, max_evaluations=4, generation_size=4)
        obs.enable()
        screened = run_sweep(searcher, param_oracle, rng=7, proxy=True)
        assert screened.result.screened > 0
        assert screened.result.proposed >= (
            screened.result.evaluations + screened.result.screened
        )
        counters = obs.REGISTRY.as_dict()["counters"]
        assert counters["fabric.evaluated"] == screened.evaluated
        assert counters["fabric.screened"] == screened.result.screened
        # Screening is part of the deterministic contract too.
        repeat = run_sweep(
            RandomSearch(SPACE, BUDGET, max_evaluations=4, generation_size=4),
            param_oracle, rng=7, proxy=True,
        )
        assert sig(screened) == sig(repeat)
        assert repeat.result.screened == screened.result.screened

    def test_bad_proxy_argument_rejected(self):
        with pytest.raises(TypeError, match="proxy must be"):
            run_sweep(make_searcher(2), param_oracle, rng=5, proxy=3.14)


# ----------------------------------------------------------------------
# Schedule simulation (what the bench's speedup numbers come from)
# ----------------------------------------------------------------------
class TestScheduleSimulation:
    TIMELINE = [
        [(0, 4.0), (1, 1.0), (2, 1.0), (3, 1.0)],
        [(4, 2.0), (5, 2.0)],
    ]

    def test_single_worker_is_the_serial_sum(self):
        serial = simulate_schedule(self.TIMELINE, workers=1)
        assert serial.makespan_s == pytest.approx(11.0)
        assert serial.completion_s[3] == pytest.approx(7.0)

    def test_generation_barrier_limits_speedup(self):
        # With 4 workers gen 1 is bound by its 4s straggler, gen 2 by one
        # 2s task: the barrier between generations is honored.
        fanned = simulate_schedule(self.TIMELINE, workers=4)
        assert fanned.makespan_s == pytest.approx(6.0)
        assert fanned.completion_s[5] == pytest.approx(6.0)
        assert fanned.time_to([1, 2]) == pytest.approx(1.0)

    def test_more_workers_never_slower(self):
        makespans = [
            simulate_schedule(self.TIMELINE, workers=n).makespan_s
            for n in (1, 2, 4, 8)
        ]
        assert makespans == sorted(makespans, reverse=True)

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            simulate_schedule(self.TIMELINE, workers=0)


# ----------------------------------------------------------------------
# CLI + env knob
# ----------------------------------------------------------------------
class TestFabricCli:
    def test_search_proxy_uses_env_worker_knob(self, capsys, monkeypatch):
        from repro.__main__ import main

        monkeypatch.setenv("REPRO_FABRIC_WORKERS", "2")
        assert main(["search", "--proxy", "--evaluations", "2", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "(2 worker(s))" in out
        assert "fabric sweep:" in out and "best fitness:" in out
