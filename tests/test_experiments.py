"""Experiment infrastructure and the cheap (no-training) experiments."""

import os

import pytest

from repro.experiments import ExperimentResult, format_table, save_result
from repro.experiments import (
    ablations,
    fig2_memory_map,
    fig3_layer_latency,
    fig4_model_latency,
    fig5_energy,
    fig9_power_trace,
    table1_devices,
    table4_full_results,
)
from repro.utils.scale import CI


class TestResultContainer:
    def test_add_and_query(self):
        result = ExperimentResult("t", "title", columns=["a", "b"])
        result.add_row(a=1, b="x")
        result.add_row(a=2, b="y")
        assert result.column("a") == [1, 2]
        assert result.row_by("b", "y")["a"] == 2
        assert result.row_by("b", "zzz") is None

    def test_format_table_renders(self):
        result = ExperimentResult("t", "title", columns=["name", "value"])
        result.add_row(name="alpha", value=1234.5)
        result.add_row(name="beta", value=None)
        result.note("a note")
        text = format_table(result)
        assert "alpha" in text and "1,234" in text
        assert "-" in text  # None renders as dash
        assert "note: a note" in text

    def test_save_result(self, tmp_path):
        result = ExperimentResult("unit_test_exp", "title", columns=["a"])
        result.add_row(a=1)
        path = save_result(result, str(tmp_path))
        assert os.path.exists(path)
        assert "unit_test_exp" in open(path).read()


class TestCheapExperiments:
    def test_table1(self):
        result = table1_devices.run(CI)
        assert len(result.rows) == 3
        assert result.column("sram_kb") == [128.0, 320.0, 512.0]

    def test_fig2(self):
        result = fig2_memory_map.run(CI)
        sram_rows = [r for r in result.rows if r["memory"] == "SRAM"]
        assert {r["section"] for r in sram_rows} == {
            "activations", "persistent_buffers", "runtime", "free",
        }
        total_pct = sum(r["percent_of_device"] for r in sram_rows)
        assert total_pct == pytest.approx(100.0, abs=0.1)

    def test_fig3(self):
        result = fig3_layer_latency.run(CI)
        rates = {r["kind"]: r["median_mops_per_s"] for r in result.rows if r["median_mops_per_s"]}
        assert rates["depthwise_conv2d"] < rates["conv2d"]

    def test_fig4(self):
        result = fig4_model_latency.run(CI)
        assert all(r["r_squared"] > 0.9 for r in result.rows)
        assert any("r^2" in note for note in result.notes)

    def test_fig5(self):
        result = fig5_energy.run(CI)
        assert all(r["power_cv"] < 0.02 for r in result.rows)

    def test_fig9(self):
        result = fig9_power_trace.run(CI)
        assert len(result.rows) == 4
        assert any("lower average power" in note for note in result.notes)

    def test_table4(self):
        result = table4_full_results.run(CI)
        assert len(result.rows) >= 15
        kws_l = result.row_by("model", "MicroNet-KWS-L")
        assert kws_l["lat_s"] is None and kws_l["lat_m"] is not None

    def test_ablation_proxy(self):
        result = ablations.run_proxy(CI)
        assert result.rows[0]["linear_fit_r2"] > result.rows[1]["linear_fit_r2"]

    def test_ablation_memory(self):
        result = ablations.run_memory_model(CI)
        for row in result.rows:
            assert abs(row["eq3_err_pct"]) < abs(row["sum_err_pct"])

    def test_ablation_channels(self):
        result = ablations.run_channel_multiple(CI)
        penalties = {r["channels"]: r["penalty_vs_div4"] for r in result.rows}
        assert penalties[138] > penalties[140]
