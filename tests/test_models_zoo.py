"""Model zoo: every architecture builds, exports and lands in its MCU class."""

import numpy as np
import pytest

from repro.hw.devices import LARGE, MEDIUM, SMALL
from repro.models import dscnn, external, micronets, mobilenetv2
from repro.models.autoencoders import fc_autoencoder_baseline, fc_autoencoder_wide
from repro.models.spec import arch_workload, build_module, export_graph, output_shape
from repro.runtime import memory_report
from repro.runtime.deploy import deployment_report
from repro.tensor import Tensor

ALL_SPECS = [
    micronets.micronet_kws_s(),
    micronets.micronet_kws_m(),
    micronets.micronet_kws_l(),
    micronets.micronet_kws_s4(),
    micronets.micronet_vww_s(),
    micronets.micronet_ad_s(),
    micronets.micronet_ad_m(),
    micronets.micronet_ad_l(),
    dscnn.dscnn_s(),
    dscnn.dscnn_m(),
    dscnn.dscnn_l(),
    mobilenetv2.mbnetv2_kws_s(),
    mobilenetv2.mbnetv2_kws_m(),
    fc_autoencoder_baseline(),
]


@pytest.mark.parametrize("arch", ALL_SPECS, ids=lambda a: a.name)
def test_spec_exports_valid_graph(arch):
    graph = export_graph(arch, bits=8)
    graph.validate()
    assert graph.num_params() == sum(t.elements for t in graph.weight_tensors)


@pytest.mark.parametrize(
    "arch",
    [micronets.micronet_kws_s(), dscnn.dscnn_s(), micronets.micronet_ad_s()],
    ids=lambda a: a.name,
)
def test_small_specs_build_runnable_modules(arch, rng):
    module = build_module(arch, rng=0)
    module.eval()
    batch = rng.normal(size=(2,) + arch.input_shape).astype(np.float32)
    out = module(Tensor(batch))
    assert out.shape == (2,) + output_shape(arch)
    assert np.isfinite(out.data).all()


class TestKWSFamily:
    def test_classifier_heads(self):
        for arch in (micronets.micronet_kws_s(), dscnn.dscnn_l()):
            assert output_shape(arch) == (12,)

    def test_size_ordering(self):
        sizes = [
            memory_report(export_graph(a, bits=8)).model_flash_bytes
            for a in (micronets.micronet_kws_s(), micronets.micronet_kws_m(), micronets.micronet_kws_l())
        ]
        assert sizes[0] < sizes[1] < sizes[2]

    def test_deployability_classes(self):
        # S and M fit the small board; L needs the medium board.
        for arch, fits_small in (
            (micronets.micronet_kws_s(), True),
            (micronets.micronet_kws_m(), True),
            (micronets.micronet_kws_l(), False),
        ):
            graph = export_graph(arch, bits=8)
            assert deployment_report(graph, SMALL).deployable == fits_small
            assert deployment_report(graph, MEDIUM).deployable

    def test_4bit_model_fits_small_despite_size(self):
        graph = export_graph(micronets.micronet_kws_s4(), bits=4)
        assert deployment_report(graph, SMALL).deployable
        # Its parameter count is L-class.
        assert arch_workload(micronets.micronet_kws_s4()).params > 400_000

    def test_dscnn_matches_hello_edge_scale(self):
        assert 15_000 < arch_workload(dscnn.dscnn_s()).params < 40_000
        assert 350_000 < arch_workload(dscnn.dscnn_l()).params < 550_000


class TestVWWFamily:
    def test_binary_heads(self):
        assert output_shape(micronets.micronet_vww_s()) == (2,)
        assert output_shape(micronets.micronet_vww_m()) == (2,)

    def test_input_resolutions(self):
        assert micronets.micronet_vww_s().input_shape == (50, 50, 1)
        assert micronets.micronet_vww_m().input_shape == (160, 160, 1)
        assert micronets.micronet_vww_m(input_size=64).input_shape == (64, 64, 1)

    def test_vww_s_fits_small(self):
        graph = export_graph(micronets.micronet_vww_s(), bits=8)
        assert deployment_report(graph, SMALL).deployable

    def test_vww_m_fits_medium_not_small(self):
        graph = export_graph(micronets.micronet_vww_m(), bits=8)
        assert not deployment_report(graph, SMALL).deployable
        assert deployment_report(graph, MEDIUM).deployable

    def test_mobilenet_v2_full_backbone(self):
        arch = mobilenetv2.mobilenet_v2(input_shape=(64, 64, 1), num_classes=2)
        assert output_shape(arch) == (2,)
        assert arch_workload(arch).params > 1_000_000


class TestADFamily:
    def test_machine_id_heads(self):
        for arch in (micronets.micronet_ad_s(), micronets.micronet_ad_m(), micronets.micronet_ad_l()):
            assert output_shape(arch) == (4,)

    def test_target_board_assignment(self):
        for arch, device in (
            (micronets.micronet_ad_s(), SMALL),
            (micronets.micronet_ad_m(), MEDIUM),
            (micronets.micronet_ad_l(), LARGE),
        ):
            graph = export_graph(arch, bits=8)
            assert deployment_report(graph, device).deployable, arch.name

    def test_ad_m_does_not_fit_small(self):
        graph = export_graph(micronets.micronet_ad_m(), bits=8)
        assert not deployment_report(graph, SMALL).deployable

    def test_ad_l_does_not_fit_medium(self):
        graph = export_graph(micronets.micronet_ad_l(), bits=8)
        assert not deployment_report(graph, MEDIUM).deployable


class TestAutoencoders:
    def test_reconstruction_shape(self):
        arch = fc_autoencoder_baseline()
        assert output_shape(arch) == (640,)

    def test_baseline_flash_near_paper(self):
        report = memory_report(export_graph(fc_autoencoder_baseline(), bits=8))
        assert 240_000 < report.model_flash_bytes < 310_000  # paper: 270KB

    def test_wide_exceeds_every_flash(self):
        graph = export_graph(fc_autoencoder_wide(), bits=8)
        for device in (SMALL, MEDIUM, LARGE):
            assert not deployment_report(graph, device).fits_flash


class TestExternalRecords:
    def test_proxyless_sram_bound(self):
        fits = external.PROXYLESSNAS_VWW.deployability()
        assert not fits[SMALL.name]
        assert not fits[MEDIUM.name]
        assert fits[LARGE.name]

    def test_msnet_large_only(self):
        fits = external.MSNET_VWW.deployability()
        assert not fits[SMALL.name] and fits[LARGE.name]

    def test_tflm_reference_fits_small(self):
        assert external.TFLM_PERSON_DETECTION.fits(SMALL)

    def test_conv_ae_never_deployable(self):
        assert not any(external.CONV_AE_AD.deployability().values())

    def test_mbnetv2_ad_large_only(self):
        fits = external.MBNETV2_05_AD.deployability()
        assert fits[LARGE.name] and not fits[SMALL.name]

    def test_registry_complete(self):
        assert len(external.ALL_EXTERNAL) == 5
