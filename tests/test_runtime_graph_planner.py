"""Runtime graph validation and arena memory planning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.runtime.graph import Graph, OpNode, TensorSpec
from repro.runtime.planner import ARENA_ALIGNMENT, plan_arena, tensor_lifetimes


def chain_graph(num_ops: int = 3, size: int = 100) -> Graph:
    """input -> dense -> dense ... -> output."""
    g = Graph(name="chain")
    g.add_tensor(TensorSpec("input", (size,), dtype="int8", kind="input"))
    prev = "input"
    for i in range(num_ops):
        w = f"w{i}"
        out = f"act{i}"
        g.add_tensor(TensorSpec(w, (size, size), dtype="int8", kind="weight",
                                data=np.zeros((size, size), np.int8)))
        g.add_tensor(TensorSpec(out, (size,), dtype="int8", kind="activation"))
        g.add_op(OpNode(kind="dense", name=f"fc{i}", inputs=[prev, w], outputs=[out]))
        prev = out
    g.tensors[prev].kind = "output"
    g.inputs = ["input"]
    g.outputs = [prev]
    return g


class TestGraphValidation:
    def test_valid_chain(self):
        chain_graph().validate()

    def test_duplicate_tensor_rejected(self):
        g = Graph(name="g")
        g.add_tensor(TensorSpec("t", (1,)))
        with pytest.raises(GraphError):
            g.add_tensor(TensorSpec("t", (2,)))

    def test_op_with_unknown_tensor_rejected(self):
        g = Graph(name="g")
        g.add_tensor(TensorSpec("a", (1,)))
        with pytest.raises(GraphError):
            g.add_op(OpNode(kind="add", name="x", inputs=["a", "missing"], outputs=["a"]))

    def test_unknown_op_kind_rejected(self):
        with pytest.raises(GraphError):
            OpNode(kind="attention", name="x", inputs=[], outputs=[])

    def test_empty_graph_invalid(self):
        g = Graph(name="g")
        with pytest.raises(GraphError):
            g.validate()

    def test_use_before_produce_rejected(self):
        g = chain_graph(2)
        g.ops.reverse()  # break topological order
        with pytest.raises(GraphError):
            g.validate()

    def test_double_producer_rejected(self):
        g = chain_graph(1)
        g.ops.append(OpNode(kind="dense", name="dup", inputs=["input", "w0"], outputs=["act0"]))
        with pytest.raises(GraphError):
            g.validate()

    def test_missing_output_rejected(self):
        g = chain_graph(1)
        g.outputs = ["nonexistent"]
        with pytest.raises(GraphError):
            g.validate()

    def test_num_params(self):
        g = chain_graph(2, size=10)
        assert g.num_params() == 2 * 100

    def test_op_kinds_sorted_unique(self):
        g = chain_graph(3)
        assert g.op_kinds() == ["dense"]

    def test_to_workload_ops(self):
        g = chain_graph(2, size=10)
        workload = g.to_workload()
        assert workload.ops == 2 * (2 * 10 * 10)


class TestLifetimes:
    def test_chain_lifetimes(self):
        g = chain_graph(3)
        lifetimes = tensor_lifetimes(g)
        assert lifetimes["input"] == (0, 0)
        assert lifetimes["act0"] == (0, 1)
        assert lifetimes["act2"] == (2, 2)  # graph output lives to the end

    def test_weights_have_no_lifetime(self):
        g = chain_graph(2)
        lifetimes = tensor_lifetimes(g)
        assert "w0" not in lifetimes

    def test_input_that_is_also_output_spans_whole_program(self):
        # A passthrough output must stay allocated for the entire program:
        # the application reads it after the last op runs.
        g = chain_graph(3)
        g.outputs = ["act2", "input"]
        lifetimes = tensor_lifetimes(g)
        assert lifetimes["input"] == (0, 2)

    def test_unproduced_output_rejected(self):
        g = chain_graph(2)
        g.add_tensor(TensorSpec("ghost", (4,), dtype="int8", kind="output"))
        g.outputs = ["act1", "ghost"]
        with pytest.raises(GraphError, match="never produced"):
            tensor_lifetimes(g)

    def test_dead_op_output_keeps_producer_lifetime(self):
        # An output no one consumes still occupies arena space while its
        # producer runs; it must not leak into later ops' windows either.
        g = chain_graph(3)
        g.add_tensor(TensorSpec("dead", (8,), dtype="int8", kind="activation"))
        g.ops[1].outputs.append("dead")
        lifetimes = tensor_lifetimes(g)
        assert lifetimes["dead"] == (1, 1)
        plan_arena(g).verify()

    def test_opless_graph_gets_nonnegative_lifetimes(self):
        g = Graph(name="pass")
        g.add_tensor(TensorSpec("io", (4,), dtype="int8", kind="input"))
        g.inputs = ["io"]
        g.outputs = ["io"]
        assert tensor_lifetimes(g) == {"io": (0, 0)}


class TestArenaPlanner:
    def test_chain_reuses_memory(self):
        g = chain_graph(6, size=1000)
        plan = plan_arena(g)
        # Only two ~1000B buffers are ever simultaneously live.
        assert plan.arena_bytes <= 3 * 1008 + ARENA_ALIGNMENT
        plan.verify()

    def test_alignment(self):
        g = chain_graph(2, size=100)
        plan = plan_arena(g)
        for alloc in plan.allocations:
            assert alloc.offset % ARENA_ALIGNMENT == 0
            assert alloc.size % ARENA_ALIGNMENT == 0

    def test_arena_at_least_largest_tensor(self):
        g = chain_graph(2, size=777)
        plan = plan_arena(g)
        assert plan.arena_bytes >= 777

    def test_offset_of(self):
        g = chain_graph(1)
        plan = plan_arena(g)
        assert plan.offset_of("input") >= 0
        with pytest.raises(KeyError):
            plan.offset_of("nope")

    def test_verify_catches_bad_plan(self):
        g = chain_graph(2)
        plan = plan_arena(g)
        for alloc in plan.allocations:
            alloc.offset = 0  # force every tensor to offset 0
        with pytest.raises(GraphError):
            plan.verify()

    @given(
        sizes=st.lists(st.integers(1, 400), min_size=2, max_size=10),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_chains_never_overlap(self, sizes):
        """Property: planner output is overlap-free and bounded."""
        g = Graph(name="rand")
        g.add_tensor(TensorSpec("input", (sizes[0],), dtype="int8", kind="input"))
        prev, prev_size = "input", sizes[0]
        for i, size in enumerate(sizes[1:], start=0):
            w = f"w{i}"
            out = f"a{i}"
            g.add_tensor(TensorSpec(w, (prev_size, size), dtype="int8", kind="weight",
                                    data=np.zeros((prev_size, size), np.int8)))
            g.add_tensor(TensorSpec(out, (size,), dtype="int8", kind="activation"))
            g.add_op(OpNode(kind="dense", name=f"fc{i}", inputs=[prev, w], outputs=[out]))
            prev, prev_size = out, size
        g.tensors[prev].kind = "output"
        g.inputs, g.outputs = ["input"], [prev]
        plan = plan_arena(g)
        plan.verify()  # raises on overlap
        # Arena is bounded by sum of the two largest concurrent tensors
        # rounded up, and at least the largest tensor.
        largest = max(sizes)
        assert plan.arena_bytes >= largest
        total = sum((s + 15) // 16 * 16 for s in sizes)
        assert plan.arena_bytes <= total
