"""Streaming audio front end: parity with the offline path, frame
accounting, window semantics, and the detector's hysteresis."""

import numpy as np
import pytest

from repro.audio import KWS_FEATURE_CONFIG, mfcc
from repro.audio.features import FeatureConfig, log_mel_spectrogram
from repro.audio.streaming import StreamingDetector, StreamingFeatureExtractor
from repro.errors import DatasetError

pytestmark = pytest.mark.tier1


def _speechy_signal(samples: int, seed: int = 0) -> np.ndarray:
    """A deterministic multi-tone + noise signal with speech-band energy."""
    rng = np.random.default_rng(seed)
    t = np.arange(samples) / KWS_FEATURE_CONFIG.sample_rate
    signal = (
        0.5 * np.sin(2 * np.pi * 440.0 * t)
        + 0.3 * np.sin(2 * np.pi * 1200.0 * t)
        + 0.05 * rng.standard_normal(samples)
    )
    return signal.astype(np.float32)


class TestOfflineParity:
    """Streaming features must be *bitwise* equal to the offline extractor —
    the deployed always-on path and the training path share numerics."""

    @pytest.mark.parametrize("chunk", [1, 160, 4000])
    def test_mfcc_parity_bitwise(self, chunk):
        signal = _speechy_signal(8000)
        offline = mfcc(signal, KWS_FEATURE_CONFIG)  # (49, 10)

        extractor = StreamingFeatureExtractor(KWS_FEATURE_CONFIG, window_frames=49)
        for start in range(0, len(signal), chunk):
            extractor.push(signal[start : start + chunk])
        streamed = np.stack(extractor._frames)

        assert streamed.shape == offline.shape
        assert np.array_equal(streamed, offline)  # bitwise, not allclose

    def test_log_mel_parity_bitwise(self):
        config = FeatureConfig(
            sample_rate=8000, frame_ms=40, hop_ms=20, num_mels=40, num_mfcc=0
        )
        signal = _speechy_signal(4800, seed=3)
        offline = log_mel_spectrogram(signal, config)

        extractor = StreamingFeatureExtractor(config, window_frames=offline.shape[0])
        extractor.push(signal)
        assert np.array_equal(np.stack(extractor._frames), offline)

    def test_chunk_size_invariance(self):
        """1-sample-at-a-time pushes == one big push, bitwise."""
        signal = _speechy_signal(2400, seed=7)

        one_shot = StreamingFeatureExtractor(KWS_FEATURE_CONFIG, window_frames=49)
        one_shot.push(signal)
        dribble = StreamingFeatureExtractor(KWS_FEATURE_CONFIG, window_frames=49)
        for sample in signal:
            dribble.push(np.array([sample]))

        assert one_shot.total_frames == dribble.total_frames
        assert np.array_equal(
            np.stack(one_shot._frames), np.stack(dribble._frames)
        )


class TestFrameAccounting:
    def test_counts_across_residual_boundaries(self):
        """Frames appear exactly when enough samples cross the hop grid."""
        config = KWS_FEATURE_CONFIG  # frame 320, hop 160
        extractor = StreamingFeatureExtractor(config, window_frames=49)

        assert extractor.push(_speechy_signal(319)) == 0  # one short of a frame
        assert extractor.push(_speechy_signal(1)) == 1  # completes frame 0
        # Residual holds 160 samples now; 159 more cannot finish frame 1.
        assert extractor.push(_speechy_signal(159)) == 0
        assert extractor.push(_speechy_signal(1)) == 1
        assert extractor.total_frames == 2

    def test_one_second_yields_49_frames(self):
        extractor = StreamingFeatureExtractor(KWS_FEATURE_CONFIG, window_frames=49)
        produced = extractor.push(_speechy_signal(8000))
        assert produced == 49  # the paper's 49-frames-per-second arithmetic
        assert extractor.total_frames == 49
        assert extractor.ready

    def test_empty_push_is_noop(self):
        extractor = StreamingFeatureExtractor(KWS_FEATURE_CONFIG, window_frames=49)
        extractor.push(_speechy_signal(500))
        residual_before = extractor._residual.copy()
        frames_before = extractor.total_frames

        assert extractor.push(np.zeros(0, dtype=np.float32)) == 0
        assert extractor.total_frames == frames_before
        assert np.array_equal(extractor._residual, residual_before)

    def test_window_slides_over_old_frames(self):
        extractor = StreamingFeatureExtractor(KWS_FEATURE_CONFIG, window_frames=4)
        signal = _speechy_signal(8000)
        extractor.push(signal)
        window = extractor.window()
        assert window.shape == (4, KWS_FEATURE_CONFIG.num_mfcc, 1)
        # The window holds the *latest* 4 frames.
        offline = mfcc(signal, KWS_FEATURE_CONFIG)
        assert np.array_equal(window[..., 0], offline[-4:])


class TestWindowSemantics:
    def test_not_ready_error_is_actionable(self):
        extractor = StreamingFeatureExtractor(KWS_FEATURE_CONFIG, window_frames=49)
        extractor.push(_speechy_signal(1600))  # 9 frames of 49
        assert not extractor.ready
        with pytest.raises(DatasetError, match=r"push\(\)"):
            extractor.window()
        with pytest.raises(DatasetError, match="more samples"):
            extractor.window()

    def test_remediation_estimate_is_sufficient(self):
        """Pushing the number of samples the error names makes it ready."""
        extractor = StreamingFeatureExtractor(KWS_FEATURE_CONFIG, window_frames=49)
        extractor.push(_speechy_signal(1600))
        with pytest.raises(DatasetError) as excinfo:
            extractor.window()
        import re

        need = int(re.search(r"~(\d+) more samples", str(excinfo.value)).group(1))
        extractor.push(_speechy_signal(need, seed=5))
        assert extractor.ready
        extractor.window()  # no raise

    def test_reset_round_trips(self):
        signal = _speechy_signal(8000)
        extractor = StreamingFeatureExtractor(KWS_FEATURE_CONFIG, window_frames=49)
        extractor.push(signal)
        first = extractor.window()

        extractor.reset()
        assert extractor.total_frames == 0
        assert not extractor.ready
        extractor.push(signal)
        assert np.array_equal(extractor.window(), first)

    def test_bad_window_frames_rejected(self):
        with pytest.raises(DatasetError, match="positive"):
            StreamingFeatureExtractor(KWS_FEATURE_CONFIG, window_frames=0)


class TestStreamingDetector:
    def _posterior(self, hot: int, value: float, classes: int = 4) -> np.ndarray:
        vector = np.full(classes, (1.0 - value) / (classes - 1))
        vector[hot] = value
        return vector

    def test_smoothing_delays_trigger(self):
        detector = StreamingDetector(4, smoothing_windows=3, threshold=0.6)
        # One confident window averaged with two flat ones stays sub-threshold.
        assert detector.update(self._posterior(1, 0.25)) is None
        assert detector.update(self._posterior(1, 0.25)) is None
        assert detector.update(self._posterior(1, 0.9)) is None
        # A second confident window pulls the smoothed posterior over the line.
        assert detector.update(self._posterior(1, 0.9)) == 1

    def test_refractory_suppresses_duplicates(self):
        detector = StreamingDetector(
            4, smoothing_windows=1, threshold=0.5, refractory_windows=2
        )
        assert detector.update(self._posterior(2, 0.9)) == 2
        assert detector.update(self._posterior(2, 0.9)) is None  # cooling
        assert detector.update(self._posterior(2, 0.9)) is None  # cooling
        assert detector.update(self._posterior(2, 0.9)) == 2  # re-armed

    def test_ignored_classes_never_fire(self):
        detector = StreamingDetector(
            4, smoothing_windows=1, threshold=0.5, ignore_classes={0}
        )
        assert detector.update(self._posterior(0, 0.99)) is None
        assert detector.update(self._posterior(3, 0.99)) == 3

    def test_wrong_size_posterior_rejected(self):
        detector = StreamingDetector(4)
        with pytest.raises(DatasetError, match="4 class posteriors"):
            detector.update(np.ones(5) / 5)

    def test_reset_clears_history_and_cooldown(self):
        detector = StreamingDetector(
            4, smoothing_windows=2, threshold=0.5, refractory_windows=5
        )
        assert detector.update(self._posterior(1, 0.9)) == 1  # fires, cooldown
        assert detector.update(self._posterior(1, 0.9)) is None  # refractory
        detector.reset()
        # Post-reset behaves like a fresh detector: no cooldown, empty history.
        assert detector.update(self._posterior(2, 0.9)) == 2
