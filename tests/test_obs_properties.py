"""Property tests for the observability layer (`repro.obs`).

Seeded randomized programs check the invariants the rest of the repo
relies on: spans always nest and close (even under exceptions and
abandonment), counters are monotone, histograms summarize exactly what
they saw, the ring buffer stays bounded, the JSONL sink emits parseable
records, and a disabled process records nothing.
"""

from __future__ import annotations

import io
import json

import numpy as np
import pytest

from repro import obs
from repro.obs import trace
from repro.obs.metrics import Counter, Histogram, MetricsRegistry

pytestmark = pytest.mark.tier1


def _random_span_program(rng: np.random.Generator, depth: int = 0) -> int:
    """Run a random tree of spans, randomly raising; returns spans opened."""
    opened = 0
    for _ in range(int(rng.integers(1, 4))):
        opened += 1
        try:
            with obs.span(f"d{depth}", level=depth):
                assert trace.open_depth() == depth + 1
                if depth < 3 and rng.random() < 0.6:
                    opened += _random_span_program(rng, depth + 1)
                if rng.random() < 0.25:
                    raise RuntimeError("injected")
        except RuntimeError:
            pass
        assert trace.open_depth() == depth
    return opened


class TestSpanProperties:
    @pytest.mark.parametrize("seed", range(10))
    def test_random_programs_always_balance(self, seed):
        obs.enable()
        opened = _random_span_program(np.random.default_rng(seed))
        assert trace.open_depth() == 0
        records = obs.completed_spans()
        assert len(records) == opened
        for record in records:
            assert record.end_s is not None and record.end_s >= record.start_s
            assert record.duration_s >= 0.0
            # A child's recorded depth is its parent's + 1.
            if record.parent_index is not None:
                parent = next(r for r in records if r.index == record.parent_index)
                assert record.depth == parent.depth + 1

    def test_exception_propagates_and_tags_span(self):
        obs.enable()
        with pytest.raises(ValueError):
            with obs.span("outer"):
                with obs.span("inner"):
                    raise ValueError("boom")
        assert trace.open_depth() == 0
        by_name = {r.name: r for r in obs.completed_spans()}
        assert by_name["inner"].error == "ValueError"
        assert by_name["outer"].error == "ValueError"
        # Nested durations: the parent covers the child.
        assert by_name["outer"].duration_s >= by_name["inner"].duration_s

    def test_abandoned_child_is_closed_as_orphan(self):
        obs.enable()
        outer = obs.span("outer")
        outer.__enter__()
        inner = obs.span("inner")
        inner.__enter__()
        # Exit the parent without exiting the child (an abandoned generator).
        outer.__exit__(None, None, None)
        assert trace.open_depth() == 0
        by_name = {r.name: r for r in obs.completed_spans()}
        assert by_name["inner"].error == "orphaned"
        assert by_name["inner"].end_s is not None

    def test_ring_buffer_is_bounded(self):
        obs.enable()
        trace.set_capacity(16)
        for i in range(100):
            with obs.span("s", i=i):
                pass
        records = obs.completed_spans()
        assert len(records) == 16
        # Oldest dropped, newest kept.
        assert records[-1].metadata["i"] == 99

    def test_metadata_and_tree_render(self):
        obs.enable()
        with obs.span("parent", phase="train"):
            with obs.span("child", step=3):
                pass
        tree = obs.render_span_tree()
        assert "parent" in tree and "  child" in tree
        assert "phase=train" in tree and "step=3" in tree


class TestCounterProperties:
    @pytest.mark.parametrize("seed", range(8))
    def test_counters_are_monotone(self, seed):
        rng = np.random.default_rng(seed)
        counter = Counter("c")
        total, previous = 0, 0
        for _ in range(200):
            n = int(rng.integers(0, 5))
            counter.incr(n)
            total += n
            assert counter.value >= previous
            previous = counter.value
        assert counter.value == total

    def test_negative_increment_rejected(self):
        counter = Counter("c")
        with pytest.raises(ValueError):
            counter.incr(-1)
        assert counter.value == 0


class TestHistogramProperties:
    @pytest.mark.parametrize("seed", range(8))
    def test_summary_matches_observations(self, seed):
        rng = np.random.default_rng(seed)
        values = rng.normal(size=int(rng.integers(1, 400))).tolist()
        hist = Histogram("h", reservoir_size=64)
        for value in values:
            hist.observe(value)
        assert hist.count == len(values)
        assert hist.min == pytest.approx(min(values))
        assert hist.max == pytest.approx(max(values))
        assert hist.mean == pytest.approx(float(np.mean(values)))
        for q in (0.0, 0.5, 0.95, 1.0):
            assert hist.min <= hist.quantile(q) <= hist.max

    def test_reset_restores_empty_summary(self):
        hist = Histogram("h")
        hist.observe(3.0)
        hist.reset()
        assert hist.count == 0
        assert hist.as_dict()["min"] == 0.0 and hist.as_dict()["max"] == 0.0


class TestRegistryAndState:
    def test_disabled_records_nothing(self):
        assert not obs.enabled()
        with obs.span("ghost") as record:
            assert record is None
        obs.incr("ghost.counter")
        obs.observe("ghost.hist", 1.0)
        obs.set_gauge("ghost.gauge", 1.0)
        assert len(obs.REGISTRY) == 0
        assert obs.completed_spans() == []

    def test_enabled_scope_restores(self):
        assert not obs.enabled()
        with obs.enabled_scope(True):
            assert obs.enabled()
            obs.incr("scoped")
        assert not obs.enabled()
        assert obs.REGISTRY.counter("scoped").value == 1

    def test_reset_clears_metrics_and_spans(self):
        obs.enable()
        obs.incr("a")
        with obs.span("s"):
            pass
        obs.reset()
        assert len(obs.REGISTRY) == 0
        assert obs.completed_spans() == []

    def test_export_is_json_serializable(self):
        obs.enable()
        obs.incr("a", 2)
        obs.set_gauge("g", 0.5)
        obs.observe("h", 1.0)
        with obs.span("s", k="v"):
            pass
        blob = json.dumps(obs.export())
        parsed = json.loads(blob)
        assert parsed["metrics"]["counters"]["a"] == 2
        assert parsed["spans"][0]["name"] == "s"

    def test_registry_typed_get_or_create(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.histogram("x") is not None  # same name, distinct kind
        assert len(registry) == 2


class TestJsonlSink:
    def test_spans_stream_as_parseable_jsonl(self):
        obs.enable()
        sink = io.StringIO()
        obs.set_sink(sink)
        with obs.span("outer", run=1):
            with obs.span("inner"):
                pass
        lines = [json.loads(line) for line in sink.getvalue().splitlines()]
        assert [entry["name"] for entry in lines] == ["inner", "outer"]  # close order
        outer = lines[1]
        assert outer["type"] == "span" and outer["meta"] == {"run": 1}
        assert lines[0]["parent"] == outer["index"]

    def test_metrics_jsonl_parses(self):
        obs.enable()
        obs.incr("c", 3)
        obs.observe("h", 2.0)
        entries = [json.loads(line) for line in obs.REGISTRY.to_jsonl().splitlines()]
        kinds = {entry["type"] for entry in entries}
        assert kinds == {"counter", "histogram"}


class TestEndToEndTelemetry:
    """The acceptance scenario: one (tiny) DNAS search plus one interpreter
    inference under ``obs.enable()`` must yield per-op timings, a span tree,
    and nonzero cache hit *and* miss counters."""

    def test_dnas_and_inference_produce_full_report(self):
        from repro.models.spec import export_graph
        from repro.nas import DSCNNSupernet, ResourceBudget, SearchConfig, search
        from repro.nas.budgets import resource_profile
        from repro.runtime.interpreter import Interpreter

        rng = np.random.default_rng(0)
        x = rng.normal(size=(32, 16, 8, 1)).astype(np.float32)
        y = rng.integers(0, 4, size=32)
        net = DSCNNSupernet(
            input_shape=(16, 8, 1), num_classes=4,
            stem_options=[8, 16], num_blocks=2, block_options=[8, 16], rng=0,
            stem_kernel=(4, 4), stem_stride=(2, 2),
        )
        obs.enable()
        result = search(
            net, x, y,
            ResourceBudget(params=1e7, activation_bytes=1e7),
            SearchConfig(epochs=1, warmup_epochs=0, batch_size=16), rng=0,
        )
        # Second profile of the extracted arch must hit the memo.
        resource_profile(result.arch)

        graph = export_graph(result.arch, bits=8)
        interp = Interpreter(graph)
        interp.invoke(x[:2])

        counters = obs.REGISTRY.as_dict()["counters"]
        assert counters["dnas.steps"] == 2
        assert counters["cache.resource_profile.miss"] > 0
        assert counters["cache.resource_profile.hit"] > 0
        assert counters["interpreter.invocations"] == 1
        assert counters["interpreter.op_calls.conv2d"] >= 1

        # Per-op wall timings were captured for every graph op.
        assert set(interp.last_op_timings) == {op.name for op in graph.ops}
        assert all(t >= 0.0 for t in interp.last_op_timings.values())

        text = obs.report()
        names = {record.name for record in obs.completed_spans()}
        assert {"dnas/epoch", "dnas/step", "interpreter/invoke"} <= names
        assert "interpreter.op_seconds.conv2d" in text
        assert "dnas/step" in text
