"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.hw.latency import clear_latency_caches
from repro.nas.budgets import clear_profile_cache
from repro.resilience import faults
from repro.tensor.gemm import default_workspace
from repro.models.spec import (
    ArchSpec,
    ConvSpec,
    DenseSpec,
    DWConvSpec,
    GlobalPoolSpec,
    ResidualSpec,
    build_module,
)


@pytest.fixture(autouse=True)
def _fresh_observable_state():
    """Every test starts and ends with pristine process-wide state.

    The obs registry/ring buffer, the latency-model and resource-profile
    memos, and the GEMM workspace pool are all process-wide singletons;
    without this fixture a test could pass or fail depending on which
    tests ran before it (counter values, cache hits, pooled buffers).
    """
    obs.disable()
    obs.reset()
    clear_latency_caches()
    clear_profile_cache()
    default_workspace().clear()
    faults.clear()
    yield
    obs.disable()
    obs.reset()
    clear_latency_caches()
    clear_profile_cache()
    default_workspace().clear()
    faults.clear()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def tiny_arch() -> ArchSpec:
    """A minimal but representative architecture: conv, residuals, dense."""
    return ArchSpec(
        name="tiny",
        input_shape=(12, 12, 1),
        layers=(
            ConvSpec(8, kernel=3, stride=2),
            ResidualSpec(
                body=(DWConvSpec(kernel=3, stride=1), ConvSpec(8, kernel=1)),
                shortcut="identity",
                activation="relu",
            ),
            ResidualSpec(
                body=(DWConvSpec(kernel=3, stride=2), ConvSpec(8, kernel=1)),
                shortcut="avgpool",
                activation="relu",
            ),
            GlobalPoolSpec(),
            DenseSpec(4),
        ),
    )


@pytest.fixture
def tiny_module(tiny_arch):
    module = build_module(tiny_arch, rng=7)
    module.eval()
    return module


@pytest.fixture
def tiny_batch(rng) -> np.ndarray:
    return rng.normal(size=(4, 12, 12, 1)).astype(np.float32)


def numeric_gradient(f, array: np.ndarray, eps: float = 1e-3) -> np.ndarray:
    """Central finite differences of scalar f with respect to ``array``."""
    grad = np.zeros_like(array)
    flat = array.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        hi = f()
        flat[i] = original - eps
        lo = f()
        flat[i] = original
        grad_flat[i] = (hi - lo) / (2 * eps)
    return grad
