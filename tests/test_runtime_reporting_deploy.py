"""Memory reporting and deployability checks."""

import pytest

from repro.errors import DeploymentError
from repro.hw.devices import LARGE, MEDIUM, SMALL
from repro.models import micronets, mobilenetv2
from repro.models.spec import export_graph
from repro.runtime import (
    RUNTIME_CODE_FLASH,
    RUNTIME_SRAM_OVERHEAD,
    memory_report,
)
from repro.runtime.deploy import (
    check_deployable,
    deployment_matrix,
    deployment_report,
    require_deployable,
)
from repro.runtime.reporting import persistent_buffer_bytes


@pytest.fixture(scope="module")
def kws_s_graph():
    return export_graph(micronets.micronet_kws_s(), bits=8)


@pytest.fixture(scope="module")
def kws_l_graph():
    return export_graph(micronets.micronet_kws_l(), bits=8)


class TestMemoryReport:
    def test_components_positive(self, kws_s_graph):
        report = memory_report(kws_s_graph)
        assert report.arena_bytes > 0
        assert report.persistent_bytes > 0
        assert report.runtime_sram_bytes == RUNTIME_SRAM_OVERHEAD
        assert report.model_flash_bytes > 0
        assert report.code_flash_bytes >= RUNTIME_CODE_FLASH

    def test_totals_are_sums(self, kws_s_graph):
        report = memory_report(kws_s_graph)
        assert report.total_sram == (
            report.arena_bytes + report.persistent_bytes + report.runtime_sram_bytes
        )
        assert report.total_flash == report.model_flash_bytes + report.code_flash_bytes

    def test_breakdowns_match_totals(self, kws_s_graph):
        report = memory_report(kws_s_graph)
        assert sum(report.sram_breakdown().values()) == report.total_sram
        assert sum(report.flash_breakdown().values()) == report.total_flash

    def test_persistent_scales_with_model(self, kws_s_graph, kws_l_graph):
        assert persistent_buffer_bytes(kws_l_graph) > persistent_buffer_bytes(kws_s_graph)

    def test_flash_dominated_by_weights(self, kws_l_graph):
        report = memory_report(kws_l_graph)
        assert report.model_flash_bytes > kws_l_graph.num_params() * 0.9


class TestDeployability:
    def test_small_model_fits_everywhere(self, kws_s_graph):
        for device in (SMALL, MEDIUM, LARGE):
            assert check_deployable(kws_s_graph, device)

    def test_large_model_skips_small_board(self, kws_l_graph):
        assert not check_deployable(kws_l_graph, SMALL)
        assert check_deployable(kws_l_graph, MEDIUM)

    def test_report_margins(self, kws_s_graph):
        report = deployment_report(kws_s_graph, SMALL)
        assert report.deployable
        assert report.sram_margin_bytes > 0
        assert report.flash_margin_bytes > 0
        assert report.latency_s is not None and report.latency_s > 0
        assert report.energy_j is not None and report.energy_j > 0

    def test_undeployable_has_no_latency(self, kws_l_graph):
        report = deployment_report(kws_l_graph, SMALL)
        assert not report.deployable
        assert report.latency_s is None
        assert report.energy_j is None

    def test_matrix_covers_all_devices(self, kws_s_graph):
        matrix = deployment_matrix(kws_s_graph)
        assert set(matrix) == {SMALL.name, MEDIUM.name, LARGE.name}

    def test_require_deployable_raises(self, kws_l_graph):
        with pytest.raises(DeploymentError):
            require_deployable(kws_l_graph, SMALL)

    def test_require_deployable_passes(self, kws_s_graph):
        report = require_deployable(kws_s_graph, SMALL)
        assert report.deployable

    def test_mbnetv2_l_exceeds_medium_flash(self):
        graph = export_graph(mobilenetv2.mbnetv2_kws_l(), bits=8)
        report = deployment_report(graph, MEDIUM)
        assert not report.fits_flash
