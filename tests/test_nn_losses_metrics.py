"""Losses, metrics and augmentations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.nn import accuracy, cross_entropy, distillation_loss, mixup, mse_loss, roc_auc
from repro.nn.losses import one_hot
from repro.tensor import Tensor


class TestCrossEntropy:
    def test_matches_manual(self, rng):
        logits = rng.normal(size=(4, 3)).astype(np.float32)
        labels = np.array([0, 1, 2, 1])
        loss = cross_entropy(Tensor(logits), labels).item()
        shifted = logits - logits.max(axis=1, keepdims=True)
        log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        expected = -log_probs[np.arange(4), labels].mean()
        assert abs(loss - expected) < 1e-5

    def test_perfect_prediction_near_zero(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]], dtype=np.float32)
        loss = cross_entropy(Tensor(logits), np.array([0, 1])).item()
        assert loss < 1e-4

    def test_label_smoothing_increases_loss_on_confident(self):
        logits = np.array([[10.0, 0.0]], dtype=np.float32)
        plain = cross_entropy(Tensor(logits), np.array([0])).item()
        smoothed = cross_entropy(Tensor(logits), np.array([0]), label_smoothing=0.1).item()
        assert smoothed > plain

    def test_soft_labels(self):
        logits = np.zeros((1, 2), dtype=np.float32)
        soft = np.array([[0.5, 0.5]], dtype=np.float32)
        loss = cross_entropy(Tensor(logits), None, soft_labels=soft).item()
        assert abs(loss - np.log(2)) < 1e-5

    def test_soft_label_shape_mismatch(self):
        with pytest.raises(ShapeError):
            cross_entropy(Tensor(np.zeros((2, 3))), None, soft_labels=np.zeros((2, 2), np.float32))

    def test_gradient_direction(self):
        logits = Tensor(np.zeros((1, 2), dtype=np.float32), requires_grad=True)
        cross_entropy(logits, np.array([0])).backward()
        assert logits.grad[0, 0] < 0  # push class-0 logit up
        assert logits.grad[0, 1] > 0

    def test_one_hot(self):
        out = one_hot(np.array([1, 0]), 3)
        assert np.array_equal(out, [[0, 1, 0], [1, 0, 0]])

    def test_one_hot_rejects_2d(self):
        with pytest.raises(ShapeError):
            one_hot(np.zeros((2, 2), dtype=int), 3)


class TestDistillation:
    def test_matching_teacher_reduces_to_hard_plus_entropy(self, rng):
        logits = rng.normal(size=(4, 3)).astype(np.float32)
        labels = np.array([0, 1, 2, 0])
        # alpha=0 -> pure hard loss.
        hard_only = distillation_loss(Tensor(logits), logits, labels, alpha=0.0).item()
        expected = cross_entropy(Tensor(logits), labels).item()
        assert abs(hard_only - expected) < 1e-5

    def test_teacher_pull(self):
        student = Tensor(np.zeros((1, 2), dtype=np.float32), requires_grad=True)
        teacher = np.array([[5.0, -5.0]], dtype=np.float32)
        distillation_loss(student, teacher, np.array([0]), alpha=1.0).backward()
        assert student.grad[0, 0] < 0  # teacher prefers class 0 too


class TestMSE:
    def test_zero_for_exact(self, rng):
        x = rng.normal(size=(3, 4)).astype(np.float32)
        assert mse_loss(Tensor(x), x).item() < 1e-12

    def test_value(self):
        pred = Tensor(np.array([[1.0, 2.0]], dtype=np.float32))
        assert abs(mse_loss(pred, np.array([[0.0, 0.0]])).item() - 2.5) < 1e-6


class TestAccuracy:
    def test_basic(self):
        logits = np.array([[1, 0], [0, 1], [1, 0]], dtype=np.float32)
        assert accuracy(logits, np.array([0, 1, 1])) == pytest.approx(2 / 3)

    def test_requires_2d(self):
        with pytest.raises(ShapeError):
            accuracy(np.zeros(3), np.zeros(3))


class TestRocAuc:
    def test_perfect_separation(self):
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        labels = np.array([0, 0, 1, 1])
        assert roc_auc(scores, labels) == 1.0

    def test_inverted(self):
        scores = np.array([0.9, 0.8, 0.1, 0.2])
        labels = np.array([0, 0, 1, 1])
        assert roc_auc(scores, labels) == 0.0

    def test_random_is_half(self, rng):
        scores = rng.normal(size=2000)
        labels = rng.integers(0, 2, size=2000)
        assert abs(roc_auc(scores, labels) - 0.5) < 0.05

    def test_ties_get_half_credit(self):
        scores = np.array([0.5, 0.5])
        labels = np.array([0, 1])
        assert roc_auc(scores, labels) == 0.5

    def test_requires_both_classes(self):
        with pytest.raises(ShapeError):
            roc_auc(np.array([0.1, 0.2]), np.array([1, 1]))

    @given(n=st.integers(4, 40))
    @settings(max_examples=25, deadline=None)
    def test_matches_brute_force(self, n):
        rng = np.random.default_rng(n)
        scores = rng.normal(size=n)
        labels = rng.integers(0, 2, size=n)
        if labels.min() == labels.max():
            labels[0] = 1 - labels[0]
        pos = scores[labels == 1]
        neg = scores[labels == 0]
        brute = np.mean([
            1.0 if p > q else 0.5 if p == q else 0.0 for p in pos for q in neg
        ])
        assert abs(roc_auc(scores, labels) - brute) < 1e-9

    @given(shift=st.floats(-5, 5))
    @settings(max_examples=25, deadline=None)
    def test_shift_invariance(self, shift):
        rng = np.random.default_rng(0)
        scores = rng.normal(size=50)
        labels = rng.integers(0, 2, size=50)
        labels[0], labels[1] = 0, 1
        assert roc_auc(scores, labels) == pytest.approx(roc_auc(scores + shift, labels))


class TestMixup:
    def test_alpha_zero_identity(self, rng):
        x = rng.normal(size=(6, 3)).astype(np.float32)
        labels = np.array([0, 1, 2, 0, 1, 2])
        mixed, targets = mixup(x, labels, 3, alpha=0.0, rng=rng)
        assert np.array_equal(mixed, x)
        assert np.array_equal(targets, one_hot(labels, 3))

    def test_targets_sum_to_one(self, rng):
        x = rng.normal(size=(8, 3)).astype(np.float32)
        labels = rng.integers(0, 3, size=8)
        _, targets = mixup(x, labels, 3, alpha=0.3, rng=rng)
        assert np.allclose(targets.sum(axis=1), 1.0, atol=1e-5)

    @given(alpha=st.floats(0.1, 2.0))
    @settings(max_examples=20, deadline=None)
    def test_mixed_inputs_within_hull(self, alpha):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(10, 4)).astype(np.float32)
        mixed, _ = mixup(x, rng.integers(0, 2, 10), 2, alpha=alpha, rng=rng)
        assert mixed.min() >= x.min() - 1e-5
        assert mixed.max() <= x.max() + 1e-5
