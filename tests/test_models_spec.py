"""Architecture spec IR: shape inference, the three compilation paths."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.models import spec as S
from repro.models.spec import (
    ArchSpec,
    ConvSpec,
    DenseSpec,
    DropoutSpec,
    DWConvSpec,
    FlattenSpec,
    GlobalPoolSpec,
    PoolSpec,
    ResidualSpec,
    arch_workload,
    build_module,
    export_float_graph,
    export_graph,
    intermediate_shapes,
    output_shape,
)
from repro.tensor import Tensor


class TestShapeInference:
    def test_conv_stride(self):
        arch = ArchSpec("a", (10, 10, 3), (ConvSpec(8, 3, stride=2),))
        assert output_shape(arch) == (5, 5, 8)

    def test_asymmetric_conv(self):
        arch = ArchSpec("a", (49, 10, 1), (ConvSpec(64, kernel=(10, 4), stride=(2, 1)),))
        assert output_shape(arch) == (25, 10, 64)

    def test_pool_and_flatten(self):
        arch = ArchSpec("a", (8, 8, 4), (PoolSpec("avg", 2), FlattenSpec()))
        assert output_shape(arch) == (4 * 4 * 4,)

    def test_global_pool(self):
        arch = ArchSpec("a", (8, 8, 4), (GlobalPoolSpec(), DenseSpec(3)))
        assert output_shape(arch) == (3,)

    def test_residual_shapes_must_match(self):
        with pytest.raises(ShapeError):
            arch = ArchSpec(
                "bad",
                (8, 8, 4),
                (ResidualSpec(body=(ConvSpec(8, 3),), shortcut="identity"),),
            )
            output_shape(arch)

    def test_residual_avgpool_downsample(self):
        arch = ArchSpec(
            "r",
            (8, 8, 4),
            (ResidualSpec(body=(DWConvSpec(3, stride=2), ConvSpec(4, 1)), shortcut="avgpool"),),
        )
        assert output_shape(arch) == (4, 4, 4)

    def test_residual_rejects_asymmetric_stride(self):
        with pytest.raises(ShapeError):
            arch = ArchSpec(
                "bad",
                (8, 8, 4),
                (ResidualSpec(body=(DWConvSpec(3, stride=(2, 1)), ConvSpec(4, 1)), shortcut="avgpool"),),
            )
            output_shape(arch)

    def test_unknown_shortcut_rejected(self):
        with pytest.raises(ShapeError):
            ResidualSpec(body=(ConvSpec(4, 1),), shortcut="projection")

    def test_intermediate_shapes(self, tiny_arch):
        shapes = intermediate_shapes(tiny_arch)
        assert len(shapes) == len(tiny_arch.layers)
        assert shapes[-1] == (4,)

    def test_dropout_preserves_shape(self):
        arch = ArchSpec("d", (4, 4, 2), (DropoutSpec(0.5),))
        assert output_shape(arch) == (4, 4, 2)


class TestWorkloadLowering:
    def test_matches_graph_lowering(self, tiny_arch):
        direct = arch_workload(tiny_arch)
        via_graph = export_float_graph(tiny_arch).to_workload()
        assert direct.ops == via_graph.ops
        assert direct.macs == via_graph.macs

    def test_residual_contributes_add(self, tiny_arch):
        workload = arch_workload(tiny_arch)
        kinds = {l.kind for l in workload.layers}
        assert "add" in kinds
        assert "avg_pool" in kinds  # the downsampling shortcut

    def test_softmax_included_when_requested(self):
        arch = ArchSpec(
            "s", (4, 4, 1), (GlobalPoolSpec(), DenseSpec(3)), include_softmax=True
        )
        assert any(l.kind == "softmax" for l in arch_workload(arch).layers)


class TestModuleCompilation:
    def test_forward_shape(self, tiny_arch, tiny_batch):
        module = build_module(tiny_arch, rng=0)
        out = module(Tensor(tiny_batch))
        assert out.shape == (4, 4)

    def test_deterministic_init(self, tiny_arch, tiny_batch):
        m1 = build_module(tiny_arch, rng=11)
        m2 = build_module(tiny_arch, rng=11)
        m1.eval(), m2.eval()
        assert np.allclose(m1(Tensor(tiny_batch)).data, m2(Tensor(tiny_batch)).data)

    def test_different_seeds_differ(self, tiny_arch, tiny_batch):
        m1 = build_module(tiny_arch, rng=1)
        m2 = build_module(tiny_arch, rng=2)
        m1.eval(), m2.eval()
        assert not np.allclose(m1(Tensor(tiny_batch)).data, m2(Tensor(tiny_batch)).data)

    def test_qat_module_runs_and_quantizes(self, tiny_arch, tiny_batch):
        module = build_module(tiny_arch, rng=0, qat_bits=8)
        out = module(Tensor(tiny_batch))  # training mode: observes ranges
        assert out.shape == (4, 4)
        module.eval()
        out2 = module(Tensor(tiny_batch))
        assert np.isfinite(out2.data).all()

    def test_param_count_matches_workload(self, tiny_arch):
        module = build_module(tiny_arch, rng=0)
        workload = arch_workload(tiny_arch)
        # Module has BN (2 per channel) instead of fused bias (1 per
        # channel) and no conv bias, so compare conv/dense weight elements.
        module_weights = sum(
            p.size for n, p in module.named_parameters() if "weight" in n
        )
        workload_weights = workload.params - sum(
            l.output_shape[-1] for l in workload.layers if l.params > 0
        )
        assert module_weights == workload_weights


class TestBNFolding:
    def test_folded_graph_matches_module(self, tiny_arch, tiny_batch, rng):
        module = build_module(tiny_arch, rng=3)
        # Push some batches through to move BN stats off their init values.
        module.train()
        for _ in range(3):
            module(Tensor(rng.normal(size=(8, 12, 12, 1)).astype(np.float32)))
        module.eval()
        graph = export_float_graph(tiny_arch, module)
        from repro.runtime import Interpreter

        out_graph = Interpreter(graph).invoke(tiny_batch)
        out_module = module(Tensor(tiny_batch)).data
        assert np.abs(out_graph - out_module).max() < 1e-3


class TestExportGraph:
    def test_export_without_module_uses_random_weights(self, tiny_arch):
        graph = export_graph(tiny_arch, bits=8)
        graph.validate()
        assert graph.num_params() > 0

    def test_biases_are_int32(self, tiny_arch, tiny_module, tiny_batch):
        graph = export_graph(tiny_arch, tiny_module, calibration=tiny_batch, bits=8)
        for spec in graph.tensors.values():
            if spec.kind == "bias":
                assert spec.dtype == "int32"
                assert spec.data is not None

    def test_weights_per_channel_quantized(self, tiny_arch, tiny_module, tiny_batch):
        graph = export_graph(tiny_arch, tiny_module, calibration=tiny_batch, bits=8)
        conv_weights = [
            t for t in graph.weight_tensors if t.kind == "weight" and len(t.shape) == 4
        ]
        assert conv_weights
        for w in conv_weights:
            assert w.quant.per_channel
            assert w.quant.scale.size == w.shape[-1]

    def test_int4_export(self, tiny_arch, tiny_module, tiny_batch):
        graph = export_graph(tiny_arch, tiny_module, calibration=tiny_batch, bits=4)
        for spec in graph.tensors.values():
            if spec.kind == "weight":
                assert spec.dtype == "int4"
                assert spec.data.min() >= -8 and spec.data.max() <= 7

    def test_dropout_elided(self):
        arch = ArchSpec(
            "d",
            (6, 6, 1),
            (ConvSpec(4, 3), DropoutSpec(0.5), GlobalPoolSpec(), DenseSpec(2)),
        )
        graph = export_graph(arch, bits=8)
        kinds = [op.kind for op in graph.ops]
        assert "reshape" not in kinds or True
        assert len([k for k in kinds if k == "conv2d"]) == 1
