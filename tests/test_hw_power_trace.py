"""Unit tests for the duty-cycle power-trace synthesizer (hw/power_trace)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hw.devices import MEDIUM
from repro.hw.energy import EnergyModel
from repro.hw.power_trace import SUPPLY_VOLTAGE, synthesize_trace
from repro.models.spec import arch_workload

pytestmark = pytest.mark.tier1


@pytest.fixture
def workload(tiny_arch):
    return arch_workload(tiny_arch)


@pytest.fixture
def report(workload):
    return EnergyModel(MEDIUM).energy(workload)


class TestTraceGeometry:
    def test_sampling_grid(self, workload):
        trace = synthesize_trace(workload, MEDIUM, period_s=0.5, sample_rate_hz=1000.0)
        assert len(trace.time_s) == len(trace.current_a) == 500
        assert trace.time_s[0] == 0.0
        assert trace.time_s[-1] < trace.period_s == 0.5

    def test_minimum_sample_floor(self, workload):
        # 1e-4 s at 10 kHz would be a single sample; the floor keeps 16.
        trace = synthesize_trace(workload, MEDIUM, period_s=1e-4)
        assert len(trace.time_s) == 16

    def test_latency_clamped_to_period(self, workload, report):
        period = report.latency_s / 2
        trace = synthesize_trace(workload, MEDIUM, period_s=period)
        assert trace.latency_s == pytest.approx(period)

    def test_labels(self, workload):
        trace = synthesize_trace(workload, MEDIUM)
        assert trace.device == MEDIUM.name
        assert trace.model == workload.name


class TestTraceLevels:
    def test_sleep_floor_outside_active_window(self, workload, report):
        trace = synthesize_trace(workload, MEDIUM, period_s=1.0)
        sleeping = trace.time_s >= trace.latency_s
        assert sleeping.any()
        np.testing.assert_allclose(
            trace.current_a[sleeping], MEDIUM.sleep_power_w / SUPPLY_VOLTAGE
        )

    def test_active_plateau_near_model_power(self, workload, report):
        trace = synthesize_trace(workload, MEDIUM, period_s=1.0)
        active = trace.time_s < trace.latency_s
        expected = report.power_w / SUPPLY_VOLTAGE
        # ~1% multiplicative noise: the mean plateau stays within a few %.
        assert trace.current_a[active].mean() == pytest.approx(expected, rel=0.05)
        assert trace.peak_current_a == pytest.approx(expected, rel=0.10)
        assert trace.peak_current_a > MEDIUM.sleep_power_w / SUPPLY_VOLTAGE

    def test_average_power_between_sleep_and_active(self, workload, report):
        trace = synthesize_trace(workload, MEDIUM, period_s=1.0)
        assert MEDIUM.sleep_power_w < trace.average_power_w < report.power_w
        # Duty-cycled average: latency/period of active power plus the floor.
        duty = trace.latency_s / trace.period_s
        expected = duty * report.power_w + (1 - duty) * MEDIUM.sleep_power_w
        assert trace.average_power_w == pytest.approx(expected, rel=0.05)


class TestDeterminism:
    def test_default_rng_is_fixed(self, workload):
        first = synthesize_trace(workload, MEDIUM)
        second = synthesize_trace(workload, MEDIUM)
        np.testing.assert_array_equal(first.current_a, second.current_a)

    def test_explicit_rng_controls_noise(self, workload):
        a = synthesize_trace(workload, MEDIUM, rng=np.random.default_rng(1))
        b = synthesize_trace(workload, MEDIUM, rng=np.random.default_rng(2))
        active = a.time_s < a.latency_s
        assert not np.array_equal(a.current_a[active], b.current_a[active])
        # Noise only touches the active burst; the sleep floor is identical.
        np.testing.assert_array_equal(a.current_a[~active], b.current_a[~active])
