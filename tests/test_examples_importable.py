"""Examples are runnable artifacts: importable, with main() entry points.

Full example executions train models (minutes); these tests verify the
cheap structural contract — every example compiles, exposes ``main`` and
guards execution behind ``__main__`` — plus smoke-run the training-free
ones.
"""

import importlib.util
import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "examples"
)
ALL_EXAMPLES = sorted(f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py"))

#: Examples that run in seconds (no model training).
FAST_EXAMPLES = ["profile_model.py", "hardware_characterization.py"]


def _load(name):
    path = os.path.join(EXAMPLES_DIR, name)
    spec = importlib.util.spec_from_file_location(name[:-3], path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExampleStructure:
    def test_expected_examples_present(self):
        required = {
            "quickstart.py",
            "dnas_search.py",
            "anomaly_detection.py",
            "visual_wake_words.py",
            "hardware_characterization.py",
            "streaming_kws.py",
            "profile_model.py",
        }
        assert required <= set(ALL_EXAMPLES)

    @pytest.mark.parametrize("name", ALL_EXAMPLES)
    def test_importable_with_main(self, name):
        module = _load(name)
        assert callable(getattr(module, "main", None)), f"{name} lacks main()"

    @pytest.mark.parametrize("name", ALL_EXAMPLES)
    def test_has_module_docstring(self, name):
        module = _load(name)
        assert module.__doc__ and len(module.__doc__) > 40


class TestFastExamplesRun:
    @pytest.mark.parametrize("name", FAST_EXAMPLES)
    def test_runs_clean(self, name):
        result = subprocess.run(
            [sys.executable, os.path.join(EXAMPLES_DIR, name)],
            capture_output=True,
            text=True,
            timeout=420,
        )
        assert result.returncode == 0, result.stderr[-800:]
        assert len(result.stdout) > 100
