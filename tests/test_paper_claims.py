"""The paper's headline claims, as one fast executable abstract.

Every test here runs without training (hardware model + deployment stack
only), so the paper's quantitative skeleton is verified on every test run,
not just in the benchmark suite.
"""

import numpy as np
import pytest

from repro.hw.characterize import channel_sweep_conv, sample_models
from repro.hw.devices import LARGE, MEDIUM, SMALL
from repro.hw.energy import POWER_SIGMA_OVER_MU, EnergyModel
from repro.hw.latency import LatencyModel, fit_linear_latency
from repro.models import external, micronets
from repro.models.spec import arch_workload, export_graph
from repro.runtime.deploy import deployment_report
from repro.tasks.ad import uptime_percent


class TestSection3Claims:
    """§3: hardware characterization."""

    def test_claim_model_latency_linear_in_ops(self):
        """'measured latency for end-to-end models is linear with op count
        (0.95 < r^2 < 0.99)'"""
        for backbone in ("cifar10", "kws"):
            fit = fit_linear_latency(
                sample_models(backbone, 150, rng=0), LatencyModel(MEDIUM)
            )
            assert 0.95 < fit.r_squared < 1.0

    def test_claim_backbones_have_different_slopes(self):
        """'models sampled from two different backbones results in a
        different slope' (KWS higher throughput)"""
        kws = fit_linear_latency(sample_models("kws", 100, rng=1), LatencyModel(MEDIUM))
        cifar = fit_linear_latency(sample_models("cifar10", 100, rng=1), LatencyModel(MEDIUM))
        assert kws.throughput_mops > 1.2 * cifar.throughput_mops

    def test_claim_m7_twice_as_fast_as_m4(self):
        """'approximately twice as fast as the STM32F446RE'"""
        models = sample_models("kws", 30, rng=2)
        lm_s, lm_m = LatencyModel(SMALL), LatencyModel(MEDIUM)
        ratios = [lm_s.model_latency(m) / lm_m.model_latency(m) for m in models]
        assert 1.8 < np.mean(ratios) < 2.2

    def test_claim_channel_div4_speedup(self):
        """'increasing channels from 138 to 140 decreases latency'"""
        lm = LatencyModel(LARGE)
        assert (
            lm.layer_latency(channel_sweep_conv(138)).seconds
            > lm.layer_latency(channel_sweep_conv(140)).seconds
        )

    def test_claim_power_workload_independent(self):
        """'little variance in power consumption between models
        (sigma/mu = 0.00731)'"""
        em = EnergyModel(MEDIUM)
        powers = np.array([em.power(m) for m in sample_models("cifar10", 200, rng=3)])
        assert abs(powers.std() / powers.mean() - POWER_SIGMA_OVER_MU) < 0.004

    def test_claim_small_mcu_lower_energy(self):
        """'executing the same model on a smaller MCU reduces the total
        energy consumption despite an increase in latency'"""
        model = sample_models("cifar10", 1, rng=4)[0]
        e_small = EnergyModel(SMALL).energy(model)
        e_medium = EnergyModel(MEDIUM).energy(model)
        assert e_small.latency_s > e_medium.latency_s
        assert e_small.energy_j < e_medium.energy_j


class TestSection6Claims:
    """§6: results — deployability skeleton (training-free parts)."""

    def test_claim_kws_micronets_fit_smallest_mcu(self):
        """'MicroNet small and medium models ... deployable on the smallest
        MCU'"""
        for arch in (micronets.micronet_kws_s(), micronets.micronet_kws_m()):
            graph = export_graph(arch, bits=8)
            assert deployment_report(graph, SMALL).deployable, arch.name

    def test_claim_kws_large_needs_medium_mcu(self):
        graph = export_graph(micronets.micronet_kws_l(), bits=8)
        assert not deployment_report(graph, SMALL).deployable
        assert deployment_report(graph, MEDIUM).deployable

    def test_claim_kws_fps_targets(self):
        """'achieving 9.2FPS and 5.4FPS on the medium sized MCU' — require
        the same regime: S ≥ ~7 FPS, M ≥ ~4 FPS, and S faster than M."""
        lm = LatencyModel(MEDIUM)
        lat_s = lm.model_latency(arch_workload(micronets.micronet_kws_s()))
        lat_m = lm.model_latency(arch_workload(micronets.micronet_kws_m()))
        assert lat_s < lat_m
        assert 1.0 / lat_s > 6.5
        assert 1.0 / lat_m > 4.0

    def test_claim_kws_large_real_time(self):
        """'for the large model, we target latency of less than one second'"""
        lm = LatencyModel(MEDIUM)
        assert lm.model_latency(arch_workload(micronets.micronet_kws_l())) < 1.0

    def test_claim_4bit_model_bigger_but_fits_small(self):
        """Table 2: the 4-bit model out-sizes the 8-bit M model yet deploys
        on the small MCU."""
        s4 = micronets.micronet_kws_s4()
        m8 = micronets.micronet_kws_m()
        assert arch_workload(s4).params > 2 * arch_workload(m8).params
        graph = export_graph(s4, bits=4)
        assert deployment_report(graph, SMALL).deployable

    def test_claim_proxyless_msnet_sram_bound(self):
        """'ProxylessNAS ... requires the largest MCU to fit the activations
        in SRAM. MSNet shows similar characteristics.'"""
        for ref in (external.PROXYLESSNAS_VWW, external.MSNET_VWW):
            fits = ref.deployability()
            assert not fits[SMALL.name]
            assert fits[LARGE.name]

    def test_claim_vww_m_only_medium_deployable(self):
        """'our MicroNet model was the only model considered that could be
        deployed on that [medium] MCU'"""
        graph = export_graph(micronets.micronet_vww_m(), bits=8)
        assert deployment_report(graph, MEDIUM).deployable
        for ref in (external.PROXYLESSNAS_VWW, external.MSNET_VWW):
            assert not ref.fits(MEDIUM)

    def test_claim_ad_uptime_real_time(self):
        """Table 3: each MicroNet-AD runs under 100% uptime on its board."""
        for arch, device in (
            (micronets.micronet_ad_s(), SMALL),
            (micronets.micronet_ad_m(), MEDIUM),
            (micronets.micronet_ad_l(), LARGE),
        ):
            latency = LatencyModel(device).model_latency(arch_workload(arch))
            assert uptime_percent(latency) < 100.0, arch.name

    def test_claim_ad_l_less_than_half_mbnetv2_flash(self):
        """'requires less than half the Flash size' (AD-L vs MBNETV2-0.5AD)"""
        graph = export_graph(micronets.micronet_ad_l(), bits=8)
        report = deployment_report(graph, LARGE)
        assert report.memory.model_flash_bytes < 0.5 * external.MBNETV2_05_AD.flash_bytes

    def test_claim_tflm_overheads(self):
        """'just 4KB of SRAM and 37 KB of eFlash' for the runtime."""
        from repro.runtime import RUNTIME_CODE_FLASH, RUNTIME_SRAM_OVERHEAD

        assert RUNTIME_SRAM_OVERHEAD == 4 * 1024
        assert RUNTIME_CODE_FLASH == 37 * 1024
