"""Black-box search baselines: space, feasibility, the three searchers."""

import numpy as np
import pytest

from repro.errors import SearchError
from repro.models.spec import arch_workload, output_shape
from repro.nas import ResourceBudget
from repro.nas.blackbox import (
    SKIP,
    BayesianSearch,
    DSCNNSearchSpace,
    EvolutionarySearch,
    RandomSearch,
    feasible,
)
from repro.utils.rng import new_rng


@pytest.fixture
def space():
    return DSCNNSearchSpace(
        input_shape=(16, 8, 1),
        num_classes=4,
        width_options=(8, 16, 24),
        num_blocks=3,
        stem_kernel=(4, 4),
        stem_stride=(2, 2),
    )


@pytest.fixture
def budget():
    return ResourceBudget(params=10_000, activation_bytes=8_192, ops=2_000_000)


def param_count_fitness(arch):
    """A cheap deterministic oracle: prefer more parameters (capacity)."""
    return float(arch_workload(arch).params)


class TestSearchSpace:
    def test_random_genome_valid(self, space, rng):
        for _ in range(20):
            genome = space.random_genome(rng)
            assert len(genome) == space.genome_length
            assert 0 <= genome[0] < len(space.width_options)
            for gene in genome[1:]:
                assert gene == SKIP or 0 <= gene < len(space.width_options)

    def test_to_arch_shapes(self, space, rng):
        arch = space.to_arch(space.random_genome(rng))
        assert output_shape(arch) == (4,)

    def test_skip_genes_shrink_arch(self, space):
        full = space.to_arch((0, 0, 0, 0))
        skipped = space.to_arch((0, SKIP, SKIP, 0))
        assert arch_workload(skipped).params < arch_workload(full).params

    def test_all_skip_still_valid(self, space):
        arch = space.to_arch((1, SKIP, SKIP, SKIP))
        assert output_shape(arch) == (4,)

    def test_mutate_changes_one_gene(self, space, rng):
        genome = (1, 0, 1, 2)
        changed = 0
        for _ in range(30):
            mutant = space.mutate(genome, rng)
            diff = sum(a != b for a, b in zip(genome, mutant))
            assert diff <= 1
            changed += diff
        assert changed > 0

    def test_crossover_mixes(self, space, rng):
        a = (0, 0, 0, 0)
        b = (2, 2, 2, 2)
        child = space.crossover(a, b, rng)
        assert len(child) == 4
        assert set(child) <= {0, 2}

    def test_encode_vector(self, space):
        vec = space.encode((1, SKIP, 0, 2))
        assert vec.tolist() == [16.0, 0.0, 8.0, 24.0]


class TestFeasibility:
    def test_small_arch_feasible(self, space, budget):
        assert feasible(space.to_arch((0, SKIP, SKIP, 0)), budget)

    def test_params_gate(self, space):
        tight = ResourceBudget(params=100, activation_bytes=1e9)
        assert not feasible(space.to_arch((2, 2, 2, 2)), tight)

    def test_memory_gate(self, space):
        tight = ResourceBudget(params=1e9, activation_bytes=64)
        assert not feasible(space.to_arch((0, SKIP, SKIP, SKIP)), tight)

    def test_ops_gate(self, space):
        tight = ResourceBudget(params=1e9, activation_bytes=1e9, ops=10)
        assert not feasible(space.to_arch((0, SKIP, SKIP, SKIP)), tight)


class TestSearchers:
    @pytest.mark.parametrize(
        "cls", [RandomSearch, EvolutionarySearch, BayesianSearch], ids=lambda c: c.__name__
    )
    def test_finds_feasible_best(self, cls, space, budget):
        searcher = cls(space, budget, max_evaluations=8)
        result = searcher.run(param_count_fitness, rng=0)
        assert result.best_arch is not None
        assert result.evaluations <= 8
        assert feasible(result.best_arch, budget)
        assert result.best_fitness == max(f for _, f in result.history)

    def test_evolution_improves_over_random_start(self, space, budget):
        searcher = EvolutionarySearch(space, budget, max_evaluations=12, population_size=4)
        result = searcher.run(param_count_fitness, rng=1)
        first = result.history[0][1]
        assert result.best_fitness >= first

    def test_infeasible_rejections_counted(self, space):
        tight = ResourceBudget(params=900, activation_bytes=1_024, ops=120_000)
        searcher = RandomSearch(space, tight, max_evaluations=6)
        result = searcher.run(param_count_fitness, rng=2)
        # With so tight a budget most random genomes are rejected for free.
        assert result.rejected_infeasible > 0

    def test_memoization_no_duplicate_evaluations(self, space, budget):
        calls = []

        def counting_fitness(arch):
            calls.append(arch.name)
            return param_count_fitness(arch)

        searcher = EvolutionarySearch(space, budget, max_evaluations=10)
        result = searcher.run(counting_fitness, rng=3)
        assert len(calls) == result.evaluations

    def test_zero_budget_rejected(self, space, budget):
        with pytest.raises(SearchError):
            RandomSearch(space, budget, max_evaluations=0)

    def test_bayesian_gp_posterior_sane(self, space, budget):
        searcher = BayesianSearch(space, budget, max_evaluations=4)
        x = np.array([[8.0, 8.0, 8.0, 8.0], [24.0, 24.0, 24.0, 24.0]])
        y = np.array([0.0, 1.0])
        mean, var = searcher._posterior(x, y, x)
        assert np.allclose(mean, y, atol=0.05)  # interpolates training points
        assert (var >= 0).all()
        far = np.array([[200.0, 200.0, 200.0, 200.0]])
        _, far_var = searcher._posterior(x, y, far)
        assert far_var[0] > var.max()  # uncertainty grows away from data


class TestRetryBackoff:
    """The bounded-retry degradation path, with an injected sleeper."""

    def test_default_sleeper_is_time_sleep(self, space, budget):
        import time

        searcher = RandomSearch(space, budget, max_evaluations=4)
        assert searcher._sleep is time.sleep

    def test_backoff_schedule_goes_through_injected_sleeper(self, space, budget):
        sleeps = []
        failures = {"left": 2}

        def flaky_fitness(arch):
            if failures["left"] > 0:
                failures["left"] -= 1
                raise RuntimeError("transient oracle failure")
            return param_count_fitness(arch)

        searcher = RandomSearch(
            space,
            budget,
            max_evaluations=4,
            max_eval_retries=2,
            retry_backoff_s=0.25,
            sleeper=sleeps.append,
        )
        result = searcher.run(flaky_fitness, rng=0)
        # Two failed attempts, then success: exponential schedule, and the
        # recovered candidate still counts as a normal evaluation.
        assert sleeps == [0.25, 0.5]
        assert result.evaluations == 4
        assert not result.failures

    def test_exhausted_retries_record_failure_without_real_sleep(self, space, budget):
        from repro.serve import FakeClock

        clock = FakeClock()

        def always_fails(arch):
            raise RuntimeError("dead oracle")

        searcher = RandomSearch(
            space,
            budget,
            max_evaluations=2,
            max_eval_retries=1,
            retry_backoff_s=1.0,
            sleeper=clock.sleep,
        )
        result = searcher.run(always_fails, rng=0)
        assert result.evaluations == 0
        assert result.failures  # every candidate degraded to a recorded failure
        assert all(f.attempts == 2 for f in result.failures)
        # One backoff sleep per failing candidate, all on the fake clock.
        assert clock.sleeps == [1.0] * len(result.failures)

    def test_zero_backoff_never_sleeps(self, space, budget):
        sleeps = []

        def always_fails(arch):
            raise RuntimeError("dead oracle")

        searcher = RandomSearch(
            space, budget, max_evaluations=2, max_eval_retries=2, sleeper=sleeps.append
        )
        searcher.run(always_fails, rng=1)
        assert sleeps == []
