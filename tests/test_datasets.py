"""Synthetic dataset generators."""

import numpy as np
import pytest

from repro.datasets import make_ad_dataset, make_kws_dataset, make_vww_dataset
from repro.datasets.mimii import NUM_MACHINES, _machine_signature
from repro.datasets.speech_commands import (
    KWS_CLASSES,
    SILENCE_INDEX,
    UNKNOWN_INDEX,
    _word_recipe,
)
from repro.datasets.vww import MIN_PERSON_AREA_FRACTION
from repro.errors import DatasetError


class TestVWW:
    def test_shapes_and_range(self):
        data = make_vww_dataset(32, image_size=40, rng=0)
        assert data.images.shape == (32, 40, 40, 1)
        assert data.images.min() >= 0.0 and data.images.max() <= 1.0
        assert len(data) == 32

    def test_balanced(self):
        data = make_vww_dataset(64, image_size=32, rng=0)
        assert data.labels.sum() == 32

    def test_deterministic(self):
        a = make_vww_dataset(16, image_size=32, rng=42)
        b = make_vww_dataset(16, image_size=32, rng=42)
        assert np.array_equal(a.images, b.images)
        assert np.array_equal(a.labels, b.labels)

    def test_different_seeds_differ(self):
        a = make_vww_dataset(16, image_size=32, rng=1)
        b = make_vww_dataset(16, image_size=32, rng=2)
        assert not np.array_equal(a.images, b.images)

    def test_too_few_samples_rejected(self):
        with pytest.raises(DatasetError):
            make_vww_dataset(1)

    def test_positives_have_more_structure(self):
        """Person pixels shift the intensity distribution of positives."""
        data = make_vww_dataset(128, image_size=32, rng=3)
        pos = data.images[data.labels == 1]
        neg = data.images[data.labels == 0]
        # Variance within positive images should exceed negatives on average
        # (the articulated figure adds contrast mass).
        assert pos.var(axis=(1, 2, 3)).mean() > neg.var(axis=(1, 2, 3)).mean() * 0.9

    def test_min_area_constant_sane(self):
        assert MIN_PERSON_AREA_FRACTION == 0.005


class TestKWS:
    def test_shapes(self):
        data = make_kws_dataset(48, rng=0)
        assert data.features.shape == (48, 49, 10, 1)
        assert len(KWS_CLASSES) == 12

    def test_class_balance(self):
        data = make_kws_dataset(120, rng=0)
        counts = np.bincount(data.labels, minlength=12)
        assert counts.min() == counts.max() == 10

    def test_standardized(self):
        data = make_kws_dataset(96, rng=0)
        assert abs(data.features.mean()) < 0.05
        assert abs(data.features.std() - 1.0) < 0.05

    def test_deterministic(self):
        a = make_kws_dataset(24, rng=9)
        b = make_kws_dataset(24, rng=9)
        assert np.array_equal(a.features, b.features)

    def test_word_recipes_distinct_and_stable(self):
        assert _word_recipe(0) == _word_recipe(0)
        assert _word_recipe(0) != _word_recipe(1)

    def test_silence_lower_energy_prestandardization(self):
        # Generate raw and compare per-class variance of features: silence
        # clips should have markedly less spectral structure.
        data = make_kws_dataset(120, rng=1)
        silence_var = data.features[data.labels == SILENCE_INDEX].var()
        keyword_var = data.features[data.labels == 0].var()
        assert silence_var < keyword_var

    def test_too_few_samples_rejected(self):
        with pytest.raises(DatasetError):
            make_kws_dataset(5)

    def test_unknown_class_present(self):
        data = make_kws_dataset(24, rng=0)
        assert (data.labels == UNKNOWN_INDEX).sum() == 2


class TestMIMII:
    def test_shapes_and_split_semantics(self):
        train, test = make_ad_dataset(32, 32, rng=0)
        assert train.patches.shape == (32, 32, 32, 1)
        assert test.patches.shape == (32, 32, 32, 1)
        assert train.anomaly.max() == 0  # train is all-normal
        assert 0 < test.anomaly.mean() < 1

    def test_machine_ids_balanced(self):
        train, _ = make_ad_dataset(40, 8, rng=0)
        counts = np.bincount(train.machine_ids, minlength=NUM_MACHINES)
        assert counts.min() == counts.max() == 10

    def test_train_standardized(self):
        train, _ = make_ad_dataset(64, 16, rng=0)
        assert abs(train.patches.mean()) < 0.05
        assert abs(train.patches.std() - 1.0) < 0.05

    def test_deterministic(self):
        a_train, a_test = make_ad_dataset(16, 16, rng=5)
        b_train, b_test = make_ad_dataset(16, 16, rng=5)
        assert np.array_equal(a_train.patches, b_train.patches)
        assert np.array_equal(a_test.anomaly, b_test.anomaly)

    def test_machine_signatures_distinct(self):
        bases = [_machine_signature(i)[0] for i in range(NUM_MACHINES)]
        assert len(set(np.round(bases, 3))) == NUM_MACHINES

    def test_machines_separable(self):
        """Different machines should produce visibly different patches."""
        train, _ = make_ad_dataset(80, 8, rng=2)
        means = [
            train.patches[train.machine_ids == m].mean(axis=0)
            for m in range(NUM_MACHINES)
        ]
        # Pairwise distance between machine-mean patches is non-trivial.
        d01 = np.abs(means[0] - means[1]).mean()
        within = train.patches[train.machine_ids == 0].std(axis=0).mean()
        assert d01 > 0.25 * within

    def test_anomalies_differ_from_normals(self):
        _, test = make_ad_dataset(16, 120, rng=3)
        normal = test.patches[test.anomaly == 0]
        abnormal = test.patches[test.anomaly == 1]
        assert not np.allclose(normal.mean(axis=0), abnormal.mean(axis=0), atol=0.01)
