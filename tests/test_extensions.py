"""Extensions: mixed precision, codegen backend, calibration, streaming."""

import numpy as np
import pytest

from repro.audio.features import KWS_FEATURE_CONFIG, mfcc
from repro.audio.streaming import StreamingDetector, StreamingFeatureExtractor
from repro.errors import DatasetError, QuantizationError, ReproError
from repro.hw.calibration import (
    Measurement,
    fit_latency_model,
    measure_with_model,
    validate_round_trip,
)
from repro.hw.devices import MEDIUM
from repro.hw.latency import LatencyModel
from repro.hw.workload import LayerWorkload
from repro.models.micronets import micronet_kws_s
from repro.models.spec import export_float_graph, export_graph, quantize_graph
from repro.quantization.mixed import (
    MICRONET_MIXED,
    UNIFORM_INT4,
    UNIFORM_INT8,
    BitPolicy,
    assign_bits,
)
from repro.runtime import Interpreter, model_size_bytes
from repro.runtime.codegen import codegen_latency, codegen_memory_report, generate_c_source
from repro.runtime.reporting import memory_report


# ----------------------------------------------------------------------
# Mixed precision
# ----------------------------------------------------------------------
class TestBitPolicy:
    def test_defaults_and_overrides(self):
        assert MICRONET_MIXED.weight_bits("depthwise_conv2d") == 8
        assert MICRONET_MIXED.weight_bits("conv2d") == 4
        assert MICRONET_MIXED.activation_bits("conv2d") == 8

    def test_invalid_bits_rejected(self):
        with pytest.raises(QuantizationError):
            BitPolicy(name="bad", default_weight_bits=3)

    def test_assign_bits_covers_graph(self, tiny_arch):
        graph = export_float_graph(tiny_arch)
        weight_map, act_map = assign_bits(graph, MICRONET_MIXED)
        weight_tensors = {t.name for t in graph.weight_tensors if t.kind == "weight"}
        assert set(weight_map) == weight_tensors
        for name in graph.inputs:
            assert name in act_map

    def test_mixed_export_runs(self, tiny_arch, tiny_module, tiny_batch):
        graph = export_graph(
            tiny_arch, tiny_module, calibration=tiny_batch, bit_policy=MICRONET_MIXED
        )
        graph.validate()
        out = Interpreter(graph).invoke(tiny_batch)
        assert np.isfinite(out).all()
        dtypes = {
            graph.tensors[op.inputs[1]].dtype
            for op in graph.ops
            if op.kind in ("conv2d", "depthwise_conv2d", "dense")
        }
        assert dtypes == {"int4", "int8"}  # genuinely mixed

    def test_mixed_size_between_uniform(self, tiny_arch, tiny_module, tiny_batch):
        float_graph = export_float_graph(tiny_arch, tiny_module)
        sizes = {}
        for policy in (UNIFORM_INT8, UNIFORM_INT4, MICRONET_MIXED):
            wm, am = assign_bits(float_graph, policy)
            g = quantize_graph(
                float_graph, calibration=tiny_batch,
                bits=policy.default_activation_bits,
                weight_bits=policy.default_weight_bits,
                weight_bits_map=wm, activation_bits_map=am,
            )
            sizes[policy.name] = model_size_bytes(g)
        assert sizes["uniform-4"] <= sizes["mixed-dw8-pw4"] <= sizes["uniform-8"]


# ----------------------------------------------------------------------
# Codegen backend
# ----------------------------------------------------------------------
class TestCodegen:
    @pytest.fixture(scope="class")
    def kws_graph(self):
        return export_graph(micronet_kws_s(), bits=8)

    def test_source_structure(self, kws_graph):
        source = generate_c_source(kws_graph)
        assert "net_invoke" in source
        assert "static int8_t arena[" in source
        assert "arm_convolve_s8" in source
        assert "arm_depthwise_conv_s8" in source
        assert source.count(";") > len(kws_graph.ops)

    def test_codegen_saves_sram(self, kws_graph):
        interp = memory_report(kws_graph)
        gen = codegen_memory_report(kws_graph)
        assert gen.total_sram < interp.total_sram
        assert gen.persistent_bytes == 0
        assert gen.arena_bytes == interp.arena_bytes  # same planner

    def test_codegen_saves_flash(self, kws_graph):
        interp = memory_report(kws_graph)
        gen = codegen_memory_report(kws_graph)
        assert gen.total_flash < interp.total_flash

    def test_codegen_latency_strictly_lower(self, kws_graph):
        interp_latency = LatencyModel(MEDIUM).model_latency(kws_graph.to_workload())
        gen_latency = codegen_latency(kws_graph, MEDIUM)
        assert 0 < gen_latency < interp_latency


# ----------------------------------------------------------------------
# Latency-model calibration
# ----------------------------------------------------------------------
class TestCalibration:
    def _corpus(self):
        layers = []
        for channels in (16, 32, 64, 96):
            layers.append(LayerWorkload.conv2d(f"c{channels}", (12, 12, channels), channels, 3))
            layers.append(LayerWorkload.depthwise_conv2d(f"d{channels}", (12, 12, channels), 3))
            layers.append(LayerWorkload.dense(f"f{channels}", channels * 8, channels))
        return layers

    def test_round_trip_recovers_model(self):
        result, max_error = validate_round_trip(self._corpus(), MEDIUM)
        assert max_error < 0.35  # kernel/channel factors fold into per-kind cost
        assert result.r_squared > 0.99

    def test_fitted_ordering_matches_design(self):
        result, _ = validate_round_trip(self._corpus(), MEDIUM)
        assert result.cycles_per_op["depthwise_conv2d"] > result.cycles_per_op["conv2d"]

    def test_requires_enough_measurements(self):
        layer = LayerWorkload.dense("f", 8, 4)
        with pytest.raises(ReproError):
            fit_latency_model([Measurement(layer, 0.1)], MEDIUM)

    def test_rank_deficient_rejected(self):
        layer = LayerWorkload.dense("f", 8, 4)
        same = [Measurement(layer, 0.1)] * 5  # one kind, one size
        with pytest.raises(ReproError):
            fit_latency_model(same, MEDIUM)

    def test_measure_with_model_deterministic(self):
        corpus = self._corpus()
        a = measure_with_model(corpus, MEDIUM)
        b = measure_with_model(corpus, MEDIUM)
        assert all(x.seconds == y.seconds for x, y in zip(a, b))


# ----------------------------------------------------------------------
# Streaming front end
# ----------------------------------------------------------------------
class TestStreamingExtractor:
    def test_matches_batch_mfcc(self, rng):
        signal = rng.normal(size=8000).astype(np.float32)
        batch = mfcc(signal, KWS_FEATURE_CONFIG)
        extractor = StreamingFeatureExtractor(KWS_FEATURE_CONFIG, window_frames=49)
        # Push in awkward chunk sizes.
        cursor = 0
        for chunk in (100, 733, 2048, 4000, 1119):
            extractor.push(signal[cursor : cursor + chunk])
            cursor += chunk
        extractor.push(signal[cursor:])
        assert extractor.ready
        window = extractor.window()[:, :, 0]
        assert window.shape == batch.shape
        assert np.abs(window - batch).max() < 1e-4

    def test_frame_accounting(self):
        extractor = StreamingFeatureExtractor(KWS_FEATURE_CONFIG, window_frames=10)
        produced = extractor.push(np.zeros(KWS_FEATURE_CONFIG.frame_length, np.float32))
        assert produced == 1
        produced = extractor.push(np.zeros(KWS_FEATURE_CONFIG.hop_length, np.float32))
        assert produced == 1

    def test_window_before_ready_raises(self):
        extractor = StreamingFeatureExtractor(KWS_FEATURE_CONFIG, window_frames=49)
        with pytest.raises(DatasetError):
            extractor.window()

    def test_reset(self):
        extractor = StreamingFeatureExtractor(KWS_FEATURE_CONFIG, window_frames=2)
        extractor.push(np.zeros(8000, np.float32))
        extractor.reset()
        assert not extractor.ready
        assert extractor.total_frames == 0

    def test_sliding_window_keeps_latest(self, rng):
        extractor = StreamingFeatureExtractor(KWS_FEATURE_CONFIG, window_frames=3)
        extractor.push(rng.normal(size=8000).astype(np.float32))
        first = extractor.window().copy()
        extractor.push(rng.normal(size=1000).astype(np.float32))
        assert not np.array_equal(first, extractor.window())


class TestStreamingDetector:
    def test_fires_on_confident_keyword(self):
        detector = StreamingDetector(num_classes=3, smoothing_windows=2, threshold=0.6)
        fired = detector.update(np.array([0.9, 0.05, 0.05]))
        assert fired == 0

    def test_refractory_period(self):
        detector = StreamingDetector(
            num_classes=2, smoothing_windows=1, threshold=0.5, refractory_windows=3
        )
        assert detector.update(np.array([0.9, 0.1])) == 0
        for _ in range(3):
            assert detector.update(np.array([0.9, 0.1])) is None
        assert detector.update(np.array([0.9, 0.1])) == 0

    def test_ignores_silence_class(self):
        detector = StreamingDetector(
            num_classes=3, smoothing_windows=1, threshold=0.5, ignore_classes={2}
        )
        assert detector.update(np.array([0.1, 0.1, 0.8])) is None

    def test_smoothing_suppresses_single_spike(self):
        detector = StreamingDetector(num_classes=2, smoothing_windows=4, threshold=0.6)
        detector.update(np.array([0.0, 1.0]))
        detector.update(np.array([1.0, 0.0]))  # single spike for class 0
        fired = detector.update(np.array([0.0, 1.0]))
        assert fired in (None, 1)

    def test_shape_checked(self):
        detector = StreamingDetector(num_classes=3)
        with pytest.raises(DatasetError):
            detector.update(np.array([0.5, 0.5]))
