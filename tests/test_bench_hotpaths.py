"""Tier-1 smoke run of the hot-path benchmark (reduced sizes, 1 repeat).

The full bench (``benchmarks/bench_hotpaths.py``) asserts the headline
speedups (GEMM ≥1.5x on the training step, memoization ≥3x on the sweep);
this smoke run keeps the tier-1 suite fast and uses conservative thresholds
so scheduler noise on loaded CI machines can't flake it.
"""

import json
import os

from benchmarks.bench_hotpaths import (
    archive_hotpath_result,
    format_hotpath_table,
    run_hotpath_bench,
)


def test_hotpath_bench_smoke(tmp_path):
    result = run_hotpath_bench(smoke=True)
    sections = {row["section"]: row for row in result["rows"]}
    assert set(sections) == {
        "conv_training_step",
        "supernet_dnas_step",
        "characterization_sweep",
        "serving_throughput",
        "serving_latency",
        "search_fabric",
        "resilience_overhead",
        "chaos_resilience",
    }
    for row in sections.values():
        assert row["speedup"] > 0

    # Conservative floors — the full bench enforces the real 1.5x/3x bars.
    assert sections["conv_training_step"]["speedup"] >= 1.05
    assert sections["characterization_sweep"]["speedup"] >= 2.0

    # Checkpoint hooks must be ~free when disabled: a fault_point is one
    # branch (generous smoke ceiling for loaded CI boxes), and per-epoch
    # checkpointing costs a bounded fraction of a tiny search run.
    resilience = sections["resilience_overhead"]
    assert resilience["fault_point_disabled_ns"] < 5000
    assert resilience["search_checkpointed_s"] > 0
    assert resilience["checkpoint_overhead_ratio"] < 3.0

    # Serving throughput schema: one entry per batch size with loop vs
    # batched timings, plus the op counts the compiler reduced.
    serving = sections["serving_throughput"]
    assert set(serving["batches"]) == {"1", "16", "128"}
    for at in serving["batches"].values():
        assert set(at) == {
            "uncompiled_loop_s",
            "compiled_batched_s",
            "uncompiled_models_per_s",
            "compiled_models_per_s",
            "speedup",
        }
        assert at["uncompiled_loop_s"] > 0 and at["compiled_batched_s"] > 0
        assert at["speedup"] > 0
    assert serving["compiled_ops"] < serving["uncompiled_ops"]
    assert serving["arena_bytes_batch_max"] > 0
    assert serving["speedup"] == serving["batches"]["128"]["speedup"]

    # Serving latency schema: batched + unbatched replay of the same
    # seeded trace, each with the full latency/queue/shed statistics, and
    # the conservation flag (admitted + shed == submitted in both modes).
    latency = sections["serving_latency"]
    assert latency["requests"] > 0 and latency["max_batch"] == 16
    assert latency["conservation_ok"] is True
    assert set(latency["modes"]) == {"unbatched", "batched"}
    for mode_row in latency["modes"].values():
        for key in (
            "p50_ms", "p95_ms", "p99_ms", "mean_ms", "completed", "shed",
            "shed_rate", "throughput_rps", "mean_queue_depth",
            "max_queue_depth", "makespan_s", "wall_s", "max_batch",
        ):
            assert key in mode_row, f"serving_latency missing {key}"
        assert mode_row["p50_ms"] <= mode_row["p95_ms"] <= mode_row["p99_ms"]
        assert mode_row["completed"] + mode_row["shed"] == latency["requests"]
    assert latency["modes"]["unbatched"]["max_batch"] == 1
    # The smoke bar is conservative; the full bench asserts >= 2x.
    assert latency["speedup"] > 1.0
    # The smoke floor is conservative; the full bench enforces the 3x bar.
    assert serving["batches"]["128"]["speedup"] >= 1.5

    # Search fabric schema: simulated 1-vs-4-worker throughput over a real
    # proxy-screened sweep. Smoke floors are conservative; the full bench
    # enforces the issue's >= 2x speedup and <= 50% eval-fraction bars.
    fabric = sections["search_fabric"]
    assert set(fabric["workers"]) == {"1", "4"}
    for at in fabric["workers"].values():
        assert set(at) == {"makespan_s", "candidates_per_s", "time_to_pareto_s"}
        assert at["makespan_s"] > 0 and at["candidates_per_s"] > 0
    assert fabric["evaluations"] > 0
    assert fabric["proposed"] >= fabric["evaluations"] + fabric["screened_out"]
    assert 0.0 < fabric["eval_fraction"] <= 0.6
    assert fabric["screened_out"] > 0
    assert fabric["time_to_pareto_s"] <= fabric["workers"]["4"]["makespan_s"]
    assert fabric["speedup"] >= 1.3
    assert (
        fabric["workers"]["4"]["candidates_per_s"]
        >= fabric["workers"]["1"]["candidates_per_s"]
    )

    # Chaos resilience schema: the same seeded hang schedule with defenses
    # off vs on. The survival invariants are hard requirements even at
    # smoke scale; the latency ratio only needs to be positive here (the
    # full bench enforces the > 1x bar).
    chaos = sections["chaos_resilience"]
    for key in (
        "requests", "fault_rate", "hang_duration_s", "invoke_timeout_s",
        "baseline_p99_ms", "undefended_p99_ms", "defended_p99_ms",
        "undefended_shed_rate", "defended_shed_rate", "defended_timeouts",
        "defended_retries", "breaker_opens", "recovery_s",
    ):
        assert key in chaos, f"chaos_resilience missing {key}"
    assert chaos["conservation_ok"] is True
    assert chaos["survivors_bitwise_ok"] is True
    assert chaos["replay_deterministic"] is True
    assert chaos["defended_shed_rate"] <= chaos["undefended_shed_rate"]
    assert chaos["defended_timeouts"] > 0  # the hangs actually fired
    assert chaos["invoke_timeout_s"] < chaos["hang_duration_s"]

    # Observability fields: cache hit rates and workspace reuse ride along.
    assert 0.0 <= sections["conv_training_step"]["workspace_reuse_rate"] <= 1.0
    assert sections["characterization_sweep"]["layer_cache_hit_rate"] > 0.0
    assert sections["characterization_sweep"]["model_cache_hit_rate"] > 0.0
    stats = result["cache_stats"]
    assert stats["cache.layer_latency.hits"] > 0
    assert 0.0 <= stats["workspace.reuse_rate"] <= 1.0
    # The row's reuse rate and cache_stats come from one snapshot: equal,
    # not merely close — this is the drift regression guard.
    assert (
        sections["conv_training_step"]["workspace_reuse_rate"]
        == stats["workspace.reuse_rate"]
    )

    # Archiving produces both artifacts, and the JSON round-trips.
    archive_hotpath_result(result, results_dir=str(tmp_path), json_dir=str(tmp_path))
    table = (tmp_path / "hotpaths.txt").read_text()
    assert "conv_training_step" in table and format_hotpath_table(result) in table
    with open(os.path.join(tmp_path, "BENCH_hotpaths.json")) as handle:
        assert json.load(handle) == result
