"""Coverage for small helpers: initializers, report formatting, graph attrs."""

import numpy as np
import pytest

from repro.experiments.base import ExperimentResult
from repro.experiments.report import _format_cell, format_table
from repro.hw.workload import LayerWorkload
from repro.nn import init
from repro.runtime.graph import Graph, OpNode, TensorSpec, _attr_pair


class TestInitializers:
    def test_he_normal_scale(self, rng):
        w = init.he_normal(rng, (1000,), fan_in=50)
        assert abs(w.std() - np.sqrt(2 / 50)) < 0.02
        assert w.dtype == np.float32

    def test_he_normal_zero_fan_in_safe(self, rng):
        w = init.he_normal(rng, (4,), fan_in=0)
        assert np.isfinite(w).all()

    def test_glorot_uniform_bounds(self, rng):
        w = init.glorot_uniform(rng, (2000,), fan_in=30, fan_out=10)
        limit = np.sqrt(6 / 40)
        assert w.min() >= -limit and w.max() <= limit

    def test_zeros_ones(self):
        assert init.zeros((3,)).sum() == 0
        assert init.ones((3,)).sum() == 3


class TestReportFormatting:
    def test_cell_none(self):
        assert _format_cell(None) == "-"

    def test_cell_small_float(self):
        assert _format_cell(0.1234) == "0.123"

    def test_cell_medium_float(self):
        assert _format_cell(42.37) == "42.4"

    def test_cell_large_float(self):
        assert _format_cell(123456.0) == "123,456"

    def test_cell_zero(self):
        assert _format_cell(0.0) == "0"

    def test_cell_bool_and_str(self):
        assert _format_cell(True) == "True"
        assert _format_cell("abc") == "abc"

    def test_empty_result_renders(self):
        result = ExperimentResult("e", "empty", columns=["a"])
        text = format_table(result)
        assert "empty" in text


class TestAttrPair:
    def _op(self, attrs):
        return OpNode(kind="conv2d", name="c", inputs=[], outputs=[], attrs=attrs)

    def test_split_attrs(self):
        op = self._op({"stride_h": 2, "stride_w": 1})
        assert _attr_pair(op, "stride", (9, 9)) == (2, 1)

    def test_h_only_duplicates(self):
        op = self._op({"stride_h": 3})
        assert _attr_pair(op, "stride", (9, 9)) == (3, 3)

    def test_scalar_fallback(self):
        op = self._op({"stride": 2})
        assert _attr_pair(op, "stride", (9, 9)) == (2, 2)

    def test_default(self):
        assert _attr_pair(self._op({}), "stride", (7, 7)) == (7, 7)


class TestGraphHelpers:
    def test_tensor_elements_and_bytes(self):
        spec = TensorSpec("t", (4, 4, 2), dtype="int8")
        assert spec.elements == 32
        assert spec.size_bytes == 32
        assert TensorSpec("f", (4,), dtype="float32").size_bytes == 16
        assert TensorSpec("n", (5,), dtype="int4").size_bytes == 3  # ceil(2.5)

    def test_workload_of_pool_graph(self):
        g = Graph(name="g")
        g.add_tensor(TensorSpec("input", (8, 8, 2), dtype="float32", kind="input"))
        g.add_tensor(TensorSpec("out", (4, 4, 2), dtype="float32", kind="output"))
        g.add_op(OpNode(kind="max_pool", name="p", inputs=["input"], outputs=["out"],
                        attrs={"pool": 2, "stride": 2, "padding": "valid"}))
        g.inputs, g.outputs = ["input"], ["out"]
        workload = g.to_workload()
        assert workload.layers[0].kind == "max_pool"
        assert workload.layers[0].output_shape == (4, 4, 2)

    def test_reshape_contributes_no_workload(self):
        g = Graph(name="g")
        g.add_tensor(TensorSpec("input", (4, 4, 2), dtype="float32", kind="input"))
        g.add_tensor(TensorSpec("out", (32,), dtype="float32", kind="output"))
        g.add_op(OpNode(kind="reshape", name="r", inputs=["input"], outputs=["out"]))
        g.inputs, g.outputs = ["input"], ["out"]
        assert len(g.to_workload().layers) == 0


class TestWorkloadEdgeCases:
    def test_valid_padding_shapes(self):
        layer = LayerWorkload.conv2d("c", (8, 8, 1), 4, kernel=3, stride=1, padding="valid")
        assert layer.output_shape == (6, 6, 4)

    def test_softmax_ops(self):
        assert LayerWorkload.softmax("s", 10).ops == 40

    def test_input_output_elements(self):
        layer = LayerWorkload.dense("d", 16, 4)
        assert layer.input_elements == 16
        assert layer.output_elements == 4
