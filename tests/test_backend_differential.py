"""Differential harness: einsum vs gemm backends over a randomized grid.

The hand-picked parity cases in ``test_tensor_gemm.py`` pin the known
tricky geometries; this suite sweeps a *seeded random* grid of shapes,
strides, paddings, and channel counts (deliberately including counts not
divisible by 4, and odd ones) through forward **and** backward of
conv2d / depthwise_conv2d / dense under both backends and requires
agreement within float32 tolerance. Any future kernel change that holds
for the curated cases but breaks an odd geometry fails here.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.tensor import BACKENDS, Tensor, backend_scope, functional as F

pytestmark = [pytest.mark.tier1, pytest.mark.differential]

TOL = dict(rtol=1e-4, atol=1e-5)

CONV_SEEDS = list(range(12))
DW_SEEDS = list(range(100, 110))
DENSE_SEEDS = list(range(200, 208))


def _random_conv_geometry(rng: np.random.Generator, depthwise: bool):
    """Draw one random geometry; biased toward awkward channel counts."""
    n = int(rng.integers(1, 3))
    h = int(rng.integers(5, 13))
    w = int(rng.integers(5, 13))
    # 1..7 covers odd, even-but-not-div-4, and div-4 input channels.
    cin = int(rng.integers(1, 8))
    kh = int(rng.choice([1, 2, 3, 5]))
    kw = int(rng.choice([1, 2, 3, 5])) if rng.random() < 0.3 else kh
    stride = (2, 1) if rng.random() < 0.2 else int(rng.integers(1, 3))
    padding = "same" if rng.random() < 0.6 else "valid"
    if depthwise:
        wshape = (kh, kw, cin)
    else:
        cout = int(rng.integers(1, 10))
        wshape = (kh, kw, cin, cout)
    return (n, h, w, cin), wshape, stride, padding


def _run_case(seed: int, depthwise: bool, backend: str):
    """Forward + backward of one random geometry under one backend."""
    geom_rng = np.random.default_rng(seed)
    xshape, wshape, stride, padding = _random_conv_geometry(geom_rng, depthwise)
    data_rng = np.random.default_rng(seed + 10_000)
    x = Tensor(data_rng.normal(size=xshape).astype(np.float32), requires_grad=True)
    w = Tensor(data_rng.normal(size=wshape).astype(np.float32), requires_grad=True)
    op = F.depthwise_conv2d if depthwise else F.conv2d
    out = op(x, w, stride=stride, padding=padding, backend=backend)
    # Non-uniform downstream gradient so every col2im index is exercised.
    downstream = np.arange(out.data.size, dtype=np.float32).reshape(out.shape) * 1e-2
    (out * Tensor(downstream)).sum().backward()
    return out.data, x.grad, w.grad


class TestConvDifferential:
    @pytest.mark.parametrize("seed", CONV_SEEDS)
    def test_conv2d_backends_agree(self, seed):
        ref = _run_case(seed, depthwise=False, backend="einsum")
        got = _run_case(seed, depthwise=False, backend="gemm")
        for name, a, b in zip(("out", "grad_x", "grad_w"), ref, got):
            np.testing.assert_allclose(b, a, err_msg=f"seed={seed} {name}", **TOL)

    @pytest.mark.parametrize("seed", DW_SEEDS)
    def test_depthwise_backends_agree(self, seed):
        ref = _run_case(seed, depthwise=True, backend="einsum")
        got = _run_case(seed, depthwise=True, backend="gemm")
        for name, a, b in zip(("out", "grad_x", "grad_w"), ref, got):
            np.testing.assert_allclose(b, a, err_msg=f"seed={seed} {name}", **TOL)


class TestDenseDifferential:
    """Dense shares one matmul path, so both global backends must match a
    plain numpy reference bit-for-bit in forward and analytically in grad."""

    @pytest.mark.parametrize("seed", DENSE_SEEDS)
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_dense_matches_reference(self, seed, backend):
        rng = np.random.default_rng(seed)
        n, fin, fout = int(rng.integers(1, 5)), int(rng.integers(1, 9)), int(rng.integers(1, 7))
        x_data = rng.normal(size=(n, fin)).astype(np.float32)
        w_data = rng.normal(size=(fin, fout)).astype(np.float32)
        b_data = rng.normal(size=(fout,)).astype(np.float32)
        with backend_scope(backend):
            x = Tensor(x_data, requires_grad=True)
            w = Tensor(w_data, requires_grad=True)
            b = Tensor(b_data, requires_grad=True)
            out = F.dense(x, w, b)
            out.sum().backward()
        np.testing.assert_allclose(out.data, x_data @ w_data + b_data, **TOL)
        ones = np.ones((n, fout), dtype=np.float32)
        np.testing.assert_allclose(x.grad, ones @ w_data.T, **TOL)
        np.testing.assert_allclose(w.grad, x_data.T @ ones, **TOL)
        np.testing.assert_allclose(b.grad, np.full(fout, n, dtype=np.float32), **TOL)


class TestGlobalBackendDispatch:
    """The global switch and the per-call override must dispatch identically,
    so the whole suite is meaningful under either REPRO_BACKEND value."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_scope_matches_explicit_override(self, backend, rng):
        x = Tensor(rng.normal(size=(2, 7, 6, 3)).astype(np.float32))
        w = Tensor(rng.normal(size=(3, 3, 3, 5)).astype(np.float32))
        explicit = F.conv2d(x, w, stride=2, padding="same", backend=backend)
        with backend_scope(backend):
            scoped = F.conv2d(x, w, stride=2, padding="same")
        np.testing.assert_array_equal(scoped.data, explicit.data)
