"""Replayable load tests: synthetic traffic through the serving stack.

Tier-1 runs a bounded smoke (``REPRO_LOAD_ITERS`` requests, default 2000)
of the full trace-replay pipeline under a :class:`FakeClock`: seeded
diurnal/burst traffic, micro-batched dispatch with a calibrated service
model, conservation verification, and bitwise parity of every completed
response against serial batch-1 execution (cheap because arrivals draw
from a small payload pool — one reference invoke per pool entry covers
the whole trace). CI can raise the depth:

    REPRO_LOAD_ITERS=100000 pytest tests/test_serve_load.py -m load
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.runtime.interpreter import Interpreter
from repro.serve import FakeClock, ModelServer, TenantConfig, TrafficConfig, synthetic_trace
from repro.serve.bench import ServiceModel, replay_trace, serving_model
from repro.runtime.passes import compile_graph
from repro.serve.traffic import make_payload_pool

pytestmark = [pytest.mark.tier1, pytest.mark.load]

ITERATIONS = int(os.environ.get("REPRO_LOAD_ITERS", "2000"))


@pytest.fixture(scope="module")
def served_graph():
    return compile_graph(serving_model((8, 8, 1), width=8, blocks=1), level="O2").graph


def _replay(graph, requests, max_batch, rate_hz, seed=0):
    """Run one seeded trace through a fresh server; returns (result, pool)."""
    service = ServiceModel({1: 1e-4, max_batch: 1e-4 * max(1, max_batch // 2)})
    clock = FakeClock()
    server = ModelServer(
        clock=clock,
        service_time_fn=lambda digest, n: service.seconds_for(n),
    )
    config = TrafficConfig(
        requests=requests,
        mean_rate_hz=rate_hz,
        deadline_s=0.5,
        payload_pool=64,
        seed=seed,
    )
    trace = synthetic_trace(config)
    in_shape = tuple(graph.tensors[graph.inputs[0]].shape)
    payloads = make_payload_pool(in_shape, config.payload_pool, seed=seed)
    digest = server.register(
        graph,
        TenantConfig(
            max_batch=max_batch,
            max_wait_s=service.seconds_for(max_batch),
            queue_depth=max(64, 4 * max_batch),
            default_deadline_s=0.5,
        ),
    )
    result = replay_trace(server, digest, trace, payloads)
    return result, payloads


def test_trace_replay_conserves_and_matches_serial(served_graph):
    result, payloads = _replay(served_graph, ITERATIONS, max_batch=16, rate_hz=4000.0)

    # Conservation: replay_trace already verified the ledger; re-check the
    # response-level bookkeeping here so a broken drain can't hide it.
    responses = result.responses
    assert len(responses) == ITERATIONS
    completed = [r for r in responses if r.ok]
    shed = [r for r in responses if not r.ok]
    assert len(completed) + len(shed) == ITERATIONS
    assert result.stats["completed"] == len(completed)
    assert result.stats["shed_total"] == len(shed)
    for response in shed:
        assert response.shed is not None and response.shed.code

    # Bitwise parity: every completed response equals serial batch-1
    # execution of its payload (tag == payload-pool index).
    serial = Interpreter(served_graph)
    reference = {
        i: serial.invoke(payloads[i][np.newaxis])[0] for i in range(len(payloads))
    }
    assert completed, "saturating trace still completed nothing"
    for response in completed:
        assert np.array_equal(response.output, reference[response.tag]), (
            f"request {response.request_id} (payload {response.tag}) diverged "
            "from serial execution"
        )


def test_trace_replay_is_deterministic(served_graph):
    requests = min(ITERATIONS, 500)
    a, _ = _replay(served_graph, requests, max_batch=8, rate_hz=3000.0, seed=7)
    b, _ = _replay(served_graph, requests, max_batch=8, rate_hz=3000.0, seed=7)
    assert a.makespan_s == b.makespan_s
    assert a.stats == b.stats
    assert [r.request_id for r in a.responses] == [r.request_id for r in b.responses]
    assert [r.finish_s for r in a.responses] == [r.finish_s for r in b.responses]
    assert a.latency_quantiles() == b.latency_quantiles()


def test_traffic_trace_is_seeded_and_shaped():
    config = TrafficConfig(requests=1000, mean_rate_hz=500.0, seed=3)
    first = synthetic_trace(config)
    second = synthetic_trace(config)
    assert [a.time_s for a in first] == [a.time_s for a in second]
    assert len(first) == 1000
    times = [a.time_s for a in first]
    assert times == sorted(times)
    assert all(a.payload_index < config.payload_pool for a in first)
    kinds = {a.kind for a in first}
    assert "base" in kinds  # bursts are probabilistic; base load always present

    shifted = synthetic_trace(TrafficConfig(requests=1000, mean_rate_hz=500.0, seed=4))
    assert [a.time_s for a in shifted] != times


def test_bursty_traffic_still_conserves(served_graph):
    """A burst-heavy trace overruns small queues; shedding must stay exact."""
    service = ServiceModel({1: 5e-4, 4: 1e-3})
    server = ModelServer(
        clock=FakeClock(), service_time_fn=lambda d, n: service.seconds_for(n)
    )
    config = TrafficConfig(
        requests=min(ITERATIONS, 1000),
        mean_rate_hz=8000.0,
        burst_prob=0.05,
        burst_size=32,
        deadline_s=0.02,
        seed=11,
    )
    trace = synthetic_trace(config)
    in_shape = tuple(served_graph.tensors[served_graph.inputs[0]].shape)
    payloads = make_payload_pool(in_shape, config.payload_pool, seed=11)
    digest = server.register(
        served_graph,
        TenantConfig(max_batch=4, max_wait_s=1e-3, queue_depth=8,
                     default_deadline_s=0.02),
    )
    result = replay_trace(server, digest, trace, payloads)
    assert result.stats["shed_total"] > 0, "overload trace was expected to shed"
    assert result.stats["completed"] + result.stats["shed_total"] == config.requests
    codes = set(result.stats["shed"])
    assert codes <= {"queue_full", "deadline_expired", "execution_error"}
