"""Autodiff engine: gradient correctness, broadcasting, graph mechanics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.tensor import Tensor, functional as F, no_grad, is_grad_enabled
from repro.tensor.tensor import concatenate, stack, unbroadcast
from tests.conftest import numeric_gradient


def check_grad(build_loss, *tensors, tol=2e-2):
    """Compare autodiff gradients with finite differences."""
    loss = build_loss()
    loss.backward()
    for t in tensors:
        numeric = numeric_gradient(lambda: build_loss().item(), t.data)
        scale = max(np.abs(numeric).max(), 1e-3)
        assert np.abs(numeric - t.grad).max() / scale < tol, "gradient mismatch"
        t.zero_grad()


class TestElementwise:
    def test_add_mul_grad(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        check_grad(lambda: ((a * b + a) * 2.0).sum(), a, b)

    def test_broadcast_add_grad(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(4,)), requires_grad=True)
        check_grad(lambda: (a + b).sum(), a, b)
        loss = (a + b).sum()
        loss.backward()
        assert b.grad.shape == (4,)

    def test_sub_div_grad(self, rng):
        a = Tensor(rng.normal(size=(5,)) + 3.0, requires_grad=True)
        b = Tensor(rng.normal(size=(5,)) + 3.0, requires_grad=True)
        check_grad(lambda: (a / b - b).sum(), a, b)

    def test_rsub_rdiv(self):
        a = Tensor(np.array([2.0, 4.0]), requires_grad=True)
        assert np.allclose((1.0 - a).data, [-1.0, -3.0])
        assert np.allclose((8.0 / a).data, [4.0, 2.0])

    def test_pow_grad(self, rng):
        a = Tensor(np.abs(rng.normal(size=(6,))) + 0.5, requires_grad=True)
        check_grad(lambda: (a**3).sum(), a)

    def test_exp_log_grad(self, rng):
        a = Tensor(np.abs(rng.normal(size=(6,))) + 0.5, requires_grad=True)
        check_grad(lambda: (a.exp() + a.log()).sum(), a)

    def test_tanh_sigmoid_grad(self, rng):
        a = Tensor(rng.normal(size=(6,)), requires_grad=True)
        check_grad(lambda: (a.tanh() + a.sigmoid()).sum(), a)

    def test_relu_grad_zero_below(self):
        a = Tensor(np.array([-1.0, 2.0]), requires_grad=True)
        a.relu().sum().backward()
        assert np.allclose(a.grad, [0.0, 1.0])

    def test_relu6_clips(self):
        a = Tensor(np.array([-1.0, 3.0, 10.0]))
        assert np.allclose(a.relu6().data, [0.0, 3.0, 6.0])

    def test_clip_gradient_mask(self):
        a = Tensor(np.array([-2.0, 0.5, 2.0]), requires_grad=True)
        a.clip(-1.0, 1.0).sum().backward()
        assert np.allclose(a.grad, [0.0, 1.0, 0.0])

    def test_abs_grad(self):
        a = Tensor(np.array([-2.0, 3.0]), requires_grad=True)
        a.abs().sum().backward()
        assert np.allclose(a.grad, [-1.0, 1.0])


class TestReductionsAndShapes:
    def test_sum_axis_keepdims(self, rng):
        a = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        check_grad(lambda: (a.sum(axis=1, keepdims=True) ** 2).sum(), a)

    def test_sum_multi_axis(self, rng):
        a = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        out = a.sum(axis=(0, 2))
        assert out.shape == (3,)
        check_grad(lambda: (a.sum(axis=(0, 2)) ** 2).sum(), a)

    def test_mean_matches_numpy(self, rng):
        data = rng.normal(size=(3, 5))
        a = Tensor(data)
        assert np.allclose(a.mean(axis=0).data, data.mean(axis=0), atol=1e-6)

    def test_max_gradient_to_argmax(self):
        a = Tensor(np.array([[1.0, 5.0, 2.0]]), requires_grad=True)
        a.max(axis=1).sum().backward()
        assert np.allclose(a.grad, [[0.0, 1.0, 0.0]])

    def test_max_ties_split(self):
        a = Tensor(np.array([[3.0, 3.0]]), requires_grad=True)
        a.max(axis=1).sum().backward()
        assert np.allclose(a.grad, [[0.5, 0.5]])

    def test_reshape_transpose_grad(self, rng):
        a = Tensor(rng.normal(size=(2, 6)), requires_grad=True)
        check_grad(lambda: (a.reshape(3, 4).transpose((1, 0)) ** 2).sum(), a)

    def test_getitem_grad(self, rng):
        a = Tensor(rng.normal(size=(5, 3)), requires_grad=True)
        a[1:3].sum().backward()
        expected = np.zeros((5, 3))
        expected[1:3] = 1.0
        assert np.allclose(a.grad, expected)

    def test_matmul_grad(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 2)), requires_grad=True)
        check_grad(lambda: (a @ b).sum(), a, b)

    def test_concatenate_grad(self, rng):
        a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(2, 2)), requires_grad=True)
        concatenate([a, b], axis=1).sum().backward()
        assert np.allclose(a.grad, np.ones((2, 3)))
        assert np.allclose(b.grad, np.ones((2, 2)))

    def test_stack_grad(self, rng):
        a = Tensor(rng.normal(size=(3,)), requires_grad=True)
        b = Tensor(rng.normal(size=(3,)), requires_grad=True)
        (stack([a, b]) * Tensor(np.array([[1.0], [2.0]]))).sum().backward()
        assert np.allclose(a.grad, np.ones(3))
        assert np.allclose(b.grad, 2 * np.ones(3))


class TestGraphMechanics:
    def test_diamond_graph_accumulates(self):
        a = Tensor(np.array([2.0]), requires_grad=True)
        b = a * 3.0
        c = a * 4.0
        (b + c).sum().backward()
        assert np.allclose(a.grad, [7.0])

    def test_reused_node_accumulates(self):
        a = Tensor(np.array([2.0]), requires_grad=True)
        b = a * a  # d/da = 2a
        b.sum().backward()
        assert np.allclose(a.grad, [4.0])

    def test_backward_requires_scalar(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(ShapeError):
            (a * 2).backward()

    def test_backward_without_grad_flag(self):
        a = Tensor(np.ones(3))
        with pytest.raises(ShapeError):
            a.backward()

    def test_explicit_seed_gradient(self):
        a = Tensor(np.ones(3), requires_grad=True)
        (a * 2).backward(np.array([1.0, 2.0, 3.0], dtype=np.float32))
        assert np.allclose(a.grad, [2.0, 4.0, 6.0])

    def test_seed_shape_mismatch(self):
        a = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(ShapeError):
            (a * 2).backward(np.ones(4, dtype=np.float32))

    def test_no_grad_context(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
            a = Tensor(np.ones(3), requires_grad=True)
            assert not a.requires_grad
            out = a * 2
            assert not out.requires_grad
        assert is_grad_enabled()

    def test_detach_cuts_graph(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = (a * 2).detach() * 3
        assert not b.requires_grad

    def test_zero_grad(self):
        a = Tensor(np.ones(3), requires_grad=True)
        (a * 2).sum().backward()
        assert a.grad is not None
        a.zero_grad()
        assert a.grad is None

    def test_float32_everywhere(self):
        a = Tensor([1, 2, 3])
        assert a.data.dtype == np.float32
        assert (a * 2.0).data.dtype == np.float32


class TestUnbroadcast:
    @given(
        rows=st.integers(1, 4),
        cols=st.integers(1, 4),
    )
    @settings(max_examples=25, deadline=None)
    def test_unbroadcast_inverts_broadcast(self, rows, cols):
        grad = np.ones((rows, cols), dtype=np.float32)
        reduced = unbroadcast(grad, (cols,))
        assert reduced.shape == (cols,)
        assert np.allclose(reduced, rows)

    def test_unbroadcast_keepdim_axis(self):
        grad = np.ones((3, 4), dtype=np.float32)
        reduced = unbroadcast(grad, (3, 1))
        assert reduced.shape == (3, 1)
        assert np.allclose(reduced, 4)


class TestSoftmax:
    def test_softmax_normalizes(self, rng):
        x = Tensor(rng.normal(size=(4, 7)))
        probs = F.softmax(x).data
        assert np.allclose(probs.sum(axis=-1), 1.0, atol=1e-5)
        assert (probs >= 0).all()

    def test_softmax_shift_invariant(self, rng):
        x = rng.normal(size=(2, 5)).astype(np.float32)
        p1 = F.softmax(Tensor(x)).data
        p2 = F.softmax(Tensor(x + 100.0)).data
        assert np.allclose(p1, p2, atol=1e-5)

    def test_log_softmax_grad(self, rng):
        x = Tensor(rng.normal(size=(2, 4)), requires_grad=True)
        check_grad(lambda: (F.log_softmax(x) * Tensor(np.ones((2, 4), np.float32))).sum(), x)

    @given(st.integers(2, 6))
    @settings(max_examples=20, deadline=None)
    def test_softmax_matches_exp_normalization(self, k):
        x = np.linspace(-2, 2, k).astype(np.float32)[None, :]
        probs = F.softmax(Tensor(x)).data
        expected = np.exp(x) / np.exp(x).sum()
        assert np.allclose(probs, expected, atol=1e-5)
