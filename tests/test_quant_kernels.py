"""Integer reference kernels vs the float path."""

import numpy as np
import pytest

from repro.errors import QuantizationError
from repro.quantization import (
    affine_params_from_range,
    dequantize,
    quantize,
    symmetric_params_from_absmax,
)
from repro.quantization import kernels as qk
from repro.tensor import conv as fconv


def make_activation_params(data, bits=8):
    return affine_params_from_range(float(data.min()), float(data.max()), bits=bits)


def quantize_weights(w, bits=8):
    axes = tuple(range(w.ndim - 1))
    params = symmetric_params_from_absmax(np.abs(w).max(axis=axes), bits=bits)
    return quantize(w, params), params


def quantize_bias(b, in_params, w_params):
    effective = in_params.scale[0] * w_params.scale
    return np.round(b / effective).astype(np.int32)


class TestConvInt:
    @pytest.mark.parametrize("bits", [8, 4])
    def test_close_to_float(self, rng, bits):
        x = rng.normal(size=(2, 6, 6, 3)).astype(np.float32)
        w = (rng.normal(size=(3, 3, 3, 4)) * 0.3).astype(np.float32)
        b = (rng.normal(size=4) * 0.1).astype(np.float32)
        float_out, _ = fconv.conv2d_forward(x, w, 1, "same")
        float_out = float_out + b

        in_params = make_activation_params(x, bits)
        w_q, w_params = quantize_weights(w, bits)
        out_params = make_activation_params(float_out, bits)
        x_q = quantize(x, in_params)
        b_q = quantize_bias(b, in_params, w_params)
        out_q = qk.conv2d_int(x_q, w_q, b_q, in_params, w_params, out_params, 1, "same")
        recovered = dequantize(out_q, out_params)
        tolerance = (4 if bits == 8 else 3) * float(np.max(out_params.scale))
        assert np.abs(recovered - float_out).max() < tolerance

    def test_relu_fused_clamps_at_zero(self, rng):
        x = rng.normal(size=(1, 4, 4, 2)).astype(np.float32)
        w = rng.normal(size=(3, 3, 2, 2)).astype(np.float32)
        b = np.zeros(2, dtype=np.float32)
        in_params = make_activation_params(x)
        w_q, w_params = quantize_weights(w)
        out_params = affine_params_from_range(-3.0, 3.0)
        x_q = quantize(x, in_params)
        out = qk.conv2d_int(
            x_q, w_q, quantize_bias(b, in_params, w_params),
            in_params, w_params, out_params, activation="relu",
        )
        recovered = dequantize(out, out_params)
        assert recovered.min() >= -1e-6

    def test_relu6_fused_clamps_at_six(self, rng):
        x = np.full((1, 3, 3, 1), 4.0, dtype=np.float32)
        w = np.ones((1, 1, 1, 1), dtype=np.float32) * 10.0
        in_params = affine_params_from_range(0.0, 4.0)
        w_q, w_params = quantize_weights(w)
        out_params = affine_params_from_range(0.0, 40.0)
        out = qk.conv2d_int(
            quantize(x, in_params), w_q, np.zeros(1, np.int32),
            in_params, w_params, out_params, activation="relu6",
        )
        assert dequantize(out, out_params).max() <= 6.2

    def test_unknown_activation_raises(self, rng):
        x = np.zeros((1, 3, 3, 1), dtype=np.float32)
        w = np.ones((1, 1, 1, 1), dtype=np.float32)
        in_params = affine_params_from_range(-1, 1)
        w_q, w_params = quantize_weights(w)
        with pytest.raises(QuantizationError):
            qk.conv2d_int(
                quantize(x, in_params), w_q, np.zeros(1, np.int32),
                in_params, w_params, in_params, activation="gelu",
            )


class TestDepthwiseDenseInt:
    def test_depthwise_close_to_float(self, rng):
        x = rng.normal(size=(2, 5, 5, 4)).astype(np.float32)
        w = (rng.normal(size=(3, 3, 4)) * 0.3).astype(np.float32)
        b = np.zeros(4, dtype=np.float32)
        float_out, _ = fconv.depthwise_conv2d_forward(x, w, 2, "same")
        in_params = make_activation_params(x)
        w_q, w_params = quantize_weights(w)
        out_params = make_activation_params(float_out)
        out = qk.depthwise_conv2d_int(
            quantize(x, in_params), w_q, quantize_bias(b, in_params, w_params),
            in_params, w_params, out_params, stride=2,
        )
        assert np.abs(dequantize(out, out_params) - float_out).max() < 4 * out_params.scale[0]

    def test_dense_close_to_float(self, rng):
        x = rng.normal(size=(8, 16)).astype(np.float32)
        w = (rng.normal(size=(16, 5)) * 0.2).astype(np.float32)
        b = rng.normal(size=5).astype(np.float32) * 0.1
        float_out = x @ w + b
        in_params = make_activation_params(x)
        w_q, w_params = quantize_weights(w)
        out_params = make_activation_params(float_out)
        out = qk.dense_int(
            quantize(x, in_params), w_q, quantize_bias(b, in_params, w_params),
            in_params, w_params, out_params,
        )
        assert np.abs(dequantize(out, out_params) - float_out).max() < 4 * out_params.scale[0]


class TestPoolingAddSoftmaxInt:
    def test_avg_pool_rounding(self):
        params = affine_params_from_range(-1.0, 1.0)
        x_q = np.array([[[[10], [11]], [[12], [14]]]], dtype=np.int8)
        out = qk.avg_pool_int(x_q, 2, 2, "valid", params)
        assert out[0, 0, 0, 0] == 12  # round(47/4) = 12

    def test_global_avg_pool(self):
        params = affine_params_from_range(-1.0, 1.0)
        x_q = np.arange(8, dtype=np.int8).reshape(1, 2, 2, 2)
        out = qk.global_avg_pool_int(x_q, params)
        assert out.shape == (1, 2)
        assert out[0, 0] == 3  # mean(0,2,4,6)

    def test_max_pool(self):
        params = affine_params_from_range(-1.0, 1.0)
        x_q = np.array([[[[1], [9]], [[3], [4]]]], dtype=np.int8)
        assert qk.max_pool_int(x_q, 2, 2, "valid", params)[0, 0, 0, 0] == 9

    def test_add_rescales(self):
        a_params = affine_params_from_range(-1.0, 1.0)
        b_params = affine_params_from_range(-2.0, 2.0)
        out_params = affine_params_from_range(-3.0, 3.0)
        a_q = quantize(np.array([0.5]), a_params)
        b_q = quantize(np.array([1.0]), b_params)
        out = qk.add_int(a_q, b_q, a_params, b_params, out_params)
        assert abs(dequantize(out, out_params)[0] - 1.5) < 2 * out_params.scale[0]

    def test_softmax_int_distribution(self, rng):
        in_params = affine_params_from_range(-8.0, 8.0)
        logits = rng.normal(size=(4, 6)).astype(np.float32) * 3
        q = quantize(logits, in_params)
        out = qk.softmax_int(q, in_params)
        probs = (out.astype(np.float64) + 128) / 256.0
        assert np.allclose(probs.sum(axis=-1), 1.0, atol=0.05)
        assert (out >= -128).all() and (out <= 127).all()
