"""Optimizers and learning-rate schedules."""

import math

import numpy as np
import pytest

from repro.nn import SGD, Adam
from repro.nn.module import Parameter
from repro.nn.schedules import ConstantSchedule, CosineDecay, StepDecay
from repro.tensor import Tensor


def quadratic_loss(p: Parameter) -> Tensor:
    target = Tensor(np.array([3.0, -2.0], dtype=np.float32))
    diff = p - target
    return (diff * diff).sum()


class TestSGD:
    def test_converges_on_quadratic(self):
        p = Parameter(np.zeros(2))
        opt = SGD([p], lr=0.1, momentum=0.0)
        for _ in range(200):
            loss = quadratic_loss(p)
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert np.allclose(p.data, [3.0, -2.0], atol=1e-3)

    def test_momentum_accelerates(self):
        histories = {}
        for momentum in (0.0, 0.9):
            p = Parameter(np.zeros(2))
            opt = SGD([p], lr=0.01, momentum=momentum)
            for _ in range(50):
                loss = quadratic_loss(p)
                opt.zero_grad()
                loss.backward()
                opt.step()
            histories[momentum] = quadratic_loss(p).item()
        assert histories[0.9] < histories[0.0]

    def test_weight_decay_shrinks(self):
        p = Parameter(np.ones(4) * 10.0)
        opt = SGD([p], lr=0.1, momentum=0.0, weight_decay=0.1)
        for _ in range(100):
            # Zero task gradient: only decay acts.
            loss = (p * Tensor(np.zeros(4, np.float32))).sum()
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert np.abs(p.data).max() < 10.0

    def test_skips_parameters_without_grad(self):
        p = Parameter(np.ones(2))
        opt = SGD([p], lr=0.5)
        opt.step()  # no backward happened
        assert np.allclose(p.data, 1.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = Parameter(np.zeros(2))
        opt = Adam([p], lr=0.1)
        for _ in range(300):
            loss = quadratic_loss(p)
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert np.allclose(p.data, [3.0, -2.0], atol=1e-2)

    def test_first_step_magnitude_is_lr(self):
        p = Parameter(np.array([10.0]))
        opt = Adam([p], lr=0.1)
        loss = quadratic_loss(Parameter(np.zeros(2)))  # unused
        (p * 1.0).sum().backward()  # no-op way to set grads? use explicit
        p.zero_grad()
        (p * 2.0).sum().backward()
        opt.step()
        # Bias-corrected first Adam step has magnitude ~lr.
        assert abs(p.data[0] - 10.0 + 0.1) < 1e-3


class TestSchedules:
    def test_constant(self):
        schedule = ConstantSchedule(0.05)
        assert schedule(0) == schedule(100) == 0.05

    def test_cosine_endpoints(self):
        schedule = CosineDecay(0.36, 0.0008, 100)
        assert math.isclose(schedule(0), 0.36, rel_tol=1e-6)
        assert math.isclose(schedule(100), 0.0008, rel_tol=1e-6)

    def test_cosine_midpoint(self):
        schedule = CosineDecay(1.0, 0.0, 100)
        assert math.isclose(schedule(50), 0.5, rel_tol=1e-6)

    def test_cosine_monotone_decreasing(self):
        schedule = CosineDecay(0.01, 0.00001, 50)
        values = [schedule(i) for i in range(51)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_cosine_clamps_past_end(self):
        schedule = CosineDecay(1.0, 0.1, 10)
        assert schedule(1000) == schedule(10)

    def test_cosine_rejects_bad_steps(self):
        with pytest.raises(ValueError):
            CosineDecay(1.0, 0.1, 0)

    def test_step_decay(self):
        schedule = StepDecay(1.0, step_size=10, gamma=0.1)
        assert schedule(0) == 1.0
        assert math.isclose(schedule(10), 0.1)
        assert math.isclose(schedule(25), 0.01)

    def test_optimizer_follows_schedule(self):
        p = Parameter(np.zeros(1))
        opt = SGD([p], schedule=CosineDecay(0.1, 0.0, 10))
        assert math.isclose(opt.lr, 0.1)
        for _ in range(10):
            (p * 1.0).sum().backward()
            opt.step()
        assert math.isclose(opt.lr, 0.0, abs_tol=1e-9)
