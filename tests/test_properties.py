"""Cross-cutting property-based tests on randomly generated architectures.

These tie the three compilation paths together: for *any* spec the strategy
can generate, the trainable module, the exported graph and the hardware
workload must agree on shapes and op counts, the planner must produce a
valid arena, and int8 inference must track float inference.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models import spec as S
from repro.models.spec import (
    ArchSpec,
    ConvSpec,
    DenseSpec,
    DWConvSpec,
    GlobalPoolSpec,
    ResidualSpec,
)
from repro.quantization.params import (
    affine_params_from_range,
    dequantize,
    quantize,
    symmetric_params_from_absmax,
)
from repro.runtime import Interpreter, deserialize, plan_arena, serialize
from repro.tensor import Tensor


# ----------------------------------------------------------------------
# Random architecture strategy
# ----------------------------------------------------------------------
@st.composite
def small_arch(draw) -> ArchSpec:
    """A random small CNN: stem conv + 0-2 blocks + head."""
    input_hw = draw(st.sampled_from([8, 10, 12]))
    stem_width = draw(st.sampled_from([4, 8]))
    stem_stride = draw(st.sampled_from([1, 2]))
    layers = [ConvSpec(stem_width, kernel=3, stride=stem_stride)]
    num_blocks = draw(st.integers(0, 2))
    for i in range(num_blocks):
        kind = draw(st.sampled_from(["sep", "res", "conv"]))
        if kind == "sep":
            layers.append(DWConvSpec(kernel=3, stride=1))
            layers.append(ConvSpec(stem_width, kernel=1))
        elif kind == "res":
            layers.append(
                ResidualSpec(
                    body=(DWConvSpec(kernel=3, stride=1), ConvSpec(stem_width, kernel=1)),
                    shortcut="identity",
                    activation="relu",
                )
            )
        else:
            layers.append(ConvSpec(stem_width, kernel=3, stride=1))
    layers += [GlobalPoolSpec(), DenseSpec(3)]
    name = f"prop_{input_hw}_{stem_width}_{stem_stride}_{num_blocks}"
    return ArchSpec(name=name, input_shape=(input_hw, input_hw, 1), layers=tuple(layers))


class TestSpecConsistency:
    @given(arch=small_arch())
    @settings(max_examples=15, deadline=None)
    def test_module_graph_workload_agree(self, arch):
        rng = np.random.default_rng(0)
        batch = rng.normal(size=(2,) + arch.input_shape).astype(np.float32)

        module = S.build_module(arch, rng=1)
        module.eval()
        module_out = module(Tensor(batch)).data
        assert module_out.shape == (2, 3)

        graph = S.export_float_graph(arch, module)
        graph_out = Interpreter(graph).invoke(batch)
        assert np.abs(graph_out - module_out).max() < 1e-3

        workload = S.arch_workload(arch)
        assert workload.ops == graph.to_workload().ops

    @given(arch=small_arch())
    @settings(max_examples=10, deadline=None)
    def test_arena_plan_valid_for_any_arch(self, arch):
        graph = S.export_graph(arch, bits=8)
        plan = plan_arena(graph)
        plan.verify()
        largest = max(t.size_bytes for t in graph.activation_tensors)
        assert plan.arena_bytes >= largest

    @given(arch=small_arch())
    @settings(max_examples=10, deadline=None)
    def test_serializer_roundtrip_any_arch(self, arch):
        rng = np.random.default_rng(0)
        batch = rng.normal(size=(2,) + arch.input_shape).astype(np.float32)
        graph = S.export_graph(arch, calibration=batch, bits=8)
        restored = deserialize(serialize(graph))
        a = Interpreter(graph).invoke(batch)
        b = Interpreter(restored).invoke(batch)
        assert np.array_equal(a, b)

    @given(arch=small_arch(), bits=st.sampled_from([4, 8]))
    @settings(max_examples=10, deadline=None)
    def test_quantized_inference_finite(self, arch, bits):
        rng = np.random.default_rng(2)
        batch = rng.normal(size=(2,) + arch.input_shape).astype(np.float32)
        graph = S.export_graph(arch, calibration=batch, bits=bits)
        out = Interpreter(graph).invoke(batch)
        assert np.isfinite(out).all()


class TestQuantizationProperties:
    @given(
        absmax=st.lists(st.floats(0.01, 10.0), min_size=1, max_size=8),
        bits=st.sampled_from([4, 8]),
    )
    @settings(max_examples=40, deadline=None)
    def test_per_channel_roundtrip_bound(self, absmax, bits):
        absmax_arr = np.array(absmax)
        params = symmetric_params_from_absmax(absmax_arr, bits=bits)
        rng = np.random.default_rng(0)
        values = rng.uniform(-1, 1, size=(5, len(absmax))) * absmax_arr
        recovered = dequantize(quantize(values, params), params)
        per_channel_bound = params.scale * 0.51
        assert (np.abs(recovered - values) <= per_channel_bound[None, :]).all()

    @given(
        low=st.floats(-20, -0.1),
        high=st.floats(0.1, 20),
        bits=st.sampled_from([4, 8]),
    )
    @settings(max_examples=40, deadline=None)
    def test_quantize_monotone(self, low, high, bits):
        params = affine_params_from_range(low, high, bits=bits)
        values = np.linspace(low, high, 32)
        q = quantize(values, params).astype(np.int32)
        assert (np.diff(q) >= 0).all()

    @given(scale=st.floats(0.001, 1.0))
    @settings(max_examples=30, deadline=None)
    def test_zero_always_exact(self, scale):
        params = affine_params_from_range(-scale * 100, scale * 50)
        q = quantize(np.array([0.0]), params)
        assert dequantize(q, params)[0] == 0.0


class TestLatencyEnergyProperties:
    @given(st.integers(1, 60))
    @settings(max_examples=20, deadline=None)
    def test_energy_scales_with_model_size(self, width4):
        from repro.hw.devices import MEDIUM
        from repro.hw.energy import EnergyModel
        from repro.hw.workload import LayerWorkload, ModelWorkload

        width = 4 * width4
        small = ModelWorkload(name="s")
        small.append(LayerWorkload.conv2d("c", (8, 8, 4), width, 3))
        big = ModelWorkload(name="b")
        big.append(LayerWorkload.conv2d("c", (8, 8, 4), 2 * width, 3))
        em = EnergyModel(MEDIUM)
        assert em.energy(big).energy_j > em.energy(small).energy_j

    @given(st.integers(2, 40))
    @settings(max_examples=20, deadline=None)
    def test_latency_additive(self, n_layers):
        from repro.hw.devices import SMALL
        from repro.hw.latency import LatencyModel
        from repro.hw.workload import LayerWorkload, ModelWorkload

        model = ModelWorkload(name="m")
        layer = LayerWorkload.conv2d("c", (8, 8, 8), 8, 3)
        for _ in range(n_layers):
            model.append(layer)
        lm = LatencyModel(SMALL)
        assert lm.model_latency(model) == pytest.approx(
            n_layers * lm.layer_latency(layer).seconds, rel=1e-9
        )
