"""Cost-model fidelity: supernet expectations vs real deployment accounting.

The DNAS regularizers only mean something if the supernet's symbolic
params/ops/memory expectations agree with what the extracted architecture
actually costs when deployed. These tests pin the decisions to one-hot
(near-zero temperature, saturated alphas) and compare the supernet's cost
tensors against ``arch_workload`` / the arena planner on the extraction.
"""

import numpy as np
import pytest

from repro.models.spec import arch_workload, export_graph
from repro.nas import DSCNNSupernet
from repro.nas.backbones import micronet_vww_supernet
from repro.runtime import plan_arena
from repro.tensor import Tensor


def _saturate(decision, index: int) -> None:
    alpha = np.full(len(decision.options), -50.0, dtype=np.float32)
    alpha[index] = 50.0
    decision.alpha.data = alpha


@pytest.fixture
def pinned_dscnn():
    net = DSCNNSupernet(
        input_shape=(16, 8, 1), num_classes=4,
        stem_options=[8, 16], num_blocks=2, block_options=[8, 16],
        stem_kernel=(4, 4), stem_stride=(2, 2), rng=0,
    )
    _saturate(net.stem_width, 1)        # 16 channels
    for block in net.blocks:
        _saturate(block.width, 0)       # 8 channels
        if block.skip is not None:
            _saturate(block.skip, 0)    # use the block
    return net


class TestDSCNNCostFidelity:
    def _costs(self, net):
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(size=(1, 16, 8, 1)).astype(np.float32))
        _, costs = net.forward_search(x, temperature=1e-4, rng=rng)
        return costs

    def test_ops_match_extracted_workload(self, pinned_dscnn):
        costs = self._costs(pinned_dscnn)
        workload = arch_workload(pinned_dscnn.extract("pinned"))
        # The supernet counts MAC ops for conv/dw/dense; the workload adds
        # small non-MAC extras (pooling, dropout-free). Require 10%.
        mac_ops = 2 * workload.macs
        assert costs.ops.item() == pytest.approx(mac_ops, rel=0.1)

    def test_params_match_extracted_workload(self, pinned_dscnn):
        costs = self._costs(pinned_dscnn)
        workload = arch_workload(pinned_dscnn.extract("pinned"))
        # Supernet counts conv weights + per-channel bias analogues; the
        # workload counts folded conv+bias. Same order, within 10%.
        assert costs.params.item() == pytest.approx(workload.params, rel=0.1)

    def test_memory_tracks_arena(self, pinned_dscnn):
        costs = self._costs(pinned_dscnn)
        graph = export_graph(pinned_dscnn.extract("pinned"), bits=8)
        arena = plan_arena(graph).arena_bytes
        # eq.(3) (max node inputs+outputs) vs greedy planner: same order of
        # magnitude and never off by more than ~2x on these shapes.
        ratio = costs.working_memory.item() / arena
        assert 0.5 < ratio < 2.0

    def test_skipping_blocks_reduces_every_cost(self, pinned_dscnn):
        with_blocks = self._costs(pinned_dscnn)
        ops_with = with_blocks.ops.item()
        params_with = with_blocks.params.item()
        for block in pinned_dscnn.blocks:
            if block.skip is not None:
                _saturate(block.skip, 1)  # skip everything
        without = self._costs(pinned_dscnn)
        assert without.ops.item() < ops_with
        assert without.params.item() < params_with

    def test_wider_choice_costs_more(self, pinned_dscnn):
        narrow = self._costs(pinned_dscnn).ops.item()
        for block in pinned_dscnn.blocks:
            _saturate(block.width, 1)  # 16 channels
        wide = self._costs(pinned_dscnn).ops.item()
        assert wide > narrow


class TestIBNCostFidelity:
    def test_pinned_ibn_ops_match(self):
        net = micronet_vww_supernet(input_size=24, rng=0)
        for block in net.blocks:
            _saturate(block.expand_width, len(block.expand_width.options) - 1)
            _saturate(block.out_width, len(block.out_width.options) - 1)
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(size=(1, 24, 24, 1)).astype(np.float32))
        _, costs = net.forward_search(x, temperature=1e-4, rng=rng)
        workload = arch_workload(net.extract("pinned-ibn"))
        assert costs.ops.item() == pytest.approx(2 * workload.macs, rel=0.15)
        assert costs.params.item() == pytest.approx(workload.params, rel=0.15)
