"""Unit tests for the latency-model calibration pipeline (hw/calibration)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ReproError
from repro.hw.calibration import (
    CalibrationResult,
    Measurement,
    fit_latency_model,
    measure_with_model,
    validate_round_trip,
)
from repro.hw.devices import MEDIUM, SMALL
from repro.hw.latency import CYCLES_PER_OP_M7, DISPATCH_CYCLES
from repro.hw.workload import LayerWorkload

pytestmark = pytest.mark.tier1


def _uniform_factor_corpus():
    """Layers whose deterministic cost factors are constant within a kind.

    Every conv is 3x3 with div-4 channels (same kernel factor, no channel
    penalty), so the model's cycles are *exactly* linear in ops per kind —
    the calibration fit must recover them perfectly when spread is off.
    """
    return [
        LayerWorkload.conv2d("c0", (16, 16, 4), 8, kernel=3),
        LayerWorkload.conv2d("c1", (12, 12, 8), 16, kernel=3),
        LayerWorkload.conv2d("c2", (8, 8, 16), 32, kernel=3),
        LayerWorkload.depthwise_conv2d("d0", (16, 16, 8), kernel=3),
        LayerWorkload.depthwise_conv2d("d1", (8, 8, 32), kernel=3),
        LayerWorkload.dense("f0", 64, 32),
        LayerWorkload.dense("f1", 128, 10),
    ]


class TestFitLatencyModel:
    def test_exact_recovery_without_spread(self):
        measurements = measure_with_model(_uniform_factor_corpus(), MEDIUM, spread=False)
        result = fit_latency_model(measurements, MEDIUM)
        assert result.r_squared == pytest.approx(1.0, abs=1e-9)
        assert result.dispatch_cycles == pytest.approx(DISPATCH_CYCLES, rel=1e-6)
        # Kinds with unit factors come back as the model's base constants
        # (MEDIUM is dual-issue, so no IPC scaling applies).
        assert result.cycles_per_op["dense"] == pytest.approx(
            CYCLES_PER_OP_M7["dense"], rel=1e-6
        )
        assert result.cycles_per_op["depthwise_conv2d"] == pytest.approx(
            CYCLES_PER_OP_M7["depthwise_conv2d"], rel=1e-6
        )
        # 3x3 convs fold the kernel-area factor into the fitted constant.
        assert result.cycles_per_op["conv2d"] > CYCLES_PER_OP_M7["conv2d"]

    def test_ipc_handicap_visible_on_m4(self):
        small = fit_latency_model(
            measure_with_model(_uniform_factor_corpus(), SMALL, spread=False), SMALL
        )
        medium = fit_latency_model(
            measure_with_model(_uniform_factor_corpus(), MEDIUM, spread=False), MEDIUM
        )
        ratio = small.cycles_per_op["dense"] / medium.cycles_per_op["dense"]
        assert ratio == pytest.approx(1.67, rel=1e-3)

    def test_too_few_measurements_rejected(self):
        layers = _uniform_factor_corpus()[:2]
        measurements = measure_with_model(layers, MEDIUM, spread=False)
        with pytest.raises(ReproError, match="at least 3"):
            fit_latency_model(measurements, MEDIUM)

    def test_rank_deficient_corpus_rejected(self):
        # Three copies of the same geometry: the ops column is proportional
        # to the dispatch column, so the system cannot be solved.
        layer = LayerWorkload.conv2d("c", (8, 8, 4), 8, kernel=3)
        measurements = measure_with_model([layer, layer, layer], MEDIUM, spread=False)
        with pytest.raises(ReproError, match="rank-deficient"):
            fit_latency_model(measurements, MEDIUM)

    def test_fit_tolerates_layer_spread(self):
        rng = np.random.default_rng(0)
        corpus = [
            LayerWorkload.conv2d(
                f"c{i}",
                (int(rng.integers(6, 24)), int(rng.integers(6, 24)), 4 * int(rng.integers(1, 9))),
                4 * int(rng.integers(1, 9)),
                kernel=3,
            )
            for i in range(24)
        ]
        result = fit_latency_model(measure_with_model(corpus, MEDIUM, spread=True), MEDIUM)
        assert result.r_squared > 0.9


class TestCalibrationResult:
    def test_predicted_seconds_math(self):
        result = CalibrationResult(
            cycles_per_op={"dense": 3.0}, dispatch_cycles=1000.0, r_squared=1.0
        )
        workload = LayerWorkload.dense("f", 10, 10)
        expected = (3.0 * workload.ops + 1000.0) / MEDIUM.clock_hz
        assert result.predicted_seconds(workload, MEDIUM) == pytest.approx(expected)
        # Unknown kinds fall back to the generic 2 cycles/op.
        pool = LayerWorkload.global_avg_pool("p", (4, 4, 8))
        expected_pool = (2.0 * pool.ops + 1000.0) / MEDIUM.clock_hz
        assert result.predicted_seconds(pool, MEDIUM) == pytest.approx(expected_pool)

    def test_round_trip_error_is_tiny(self):
        result, max_error = validate_round_trip(_uniform_factor_corpus(), MEDIUM)
        assert max_error < 1e-9
        assert result.r_squared == pytest.approx(1.0, abs=1e-9)


class TestMeasureWithModel:
    def test_measurements_pair_workload_and_seconds(self):
        corpus = _uniform_factor_corpus()
        measurements = measure_with_model(corpus, MEDIUM, spread=False)
        assert len(measurements) == len(corpus)
        for measurement, workload in zip(measurements, corpus):
            assert isinstance(measurement, Measurement)
            assert measurement.workload is workload
            assert measurement.seconds > 0
