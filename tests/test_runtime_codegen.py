"""Unit tests for the code-generation deployment path (runtime/codegen)."""

from __future__ import annotations

import re

import numpy as np
import pytest

from repro.hw.devices import MEDIUM, SMALL
from repro.hw.latency import DISPATCH_CYCLES, LatencyModel
from repro.models.spec import export_graph
from repro.runtime.codegen import (
    CODEGEN_KERNEL_LIBRARY_FLASH,
    CODEGEN_PER_OP_FLASH,
    CODEGEN_RUNTIME_SRAM,
    _KERNEL_NAMES,
    codegen_latency,
    codegen_memory_report,
    generate_c_source,
)
from repro.runtime.planner import plan_arena

pytestmark = pytest.mark.tier1


@pytest.fixture
def tiny_graph(tiny_arch, tiny_module, rng):
    calibration = rng.normal(size=(8, 12, 12, 1)).astype(np.float32)
    return export_graph(tiny_arch, module=tiny_module, calibration=calibration, bits=8)


class TestGenerateCSource:
    def test_source_structure(self, tiny_graph):
        source = generate_c_source(tiny_graph)
        plan = plan_arena(tiny_graph)
        assert "void net_invoke(const int8_t *input, int8_t *output)" in source
        assert f"static int8_t arena[{plan.arena_bytes}];" in source
        assert '#include "cmsis_nn_kernels.h"' in source

    def test_every_op_gets_a_kernel_call(self, tiny_graph):
        source = generate_c_source(tiny_graph)
        for op in tiny_graph.ops:
            assert _KERNEL_NAMES[op.kind] in source

    def test_weights_become_const_arrays(self, tiny_graph):
        source = generate_c_source(tiny_graph)
        for spec in tiny_graph.weight_tensors:
            flat = np.asarray(spec.data).reshape(-1)
            identifier = "".join(ch if ch.isalnum() else "_" for ch in spec.name)
            assert f"{identifier}[{flat.size}]" in source
        # Quantized graphs carry int8 weights and int32 biases.
        assert "static const int8_t" in source
        assert "static const int32_t" in source

    def test_arena_offsets_are_in_bounds(self, tiny_graph):
        plan = plan_arena(tiny_graph)
        source = generate_c_source(tiny_graph)
        offsets = [int(m) for m in re.findall(r"arena \+ (\d+)", source)]
        assert offsets, "expected activation tensors addressed via the arena"
        assert all(0 <= offset < plan.arena_bytes for offset in offsets)


class TestCodegenMemoryReport:
    def test_memory_map(self, tiny_graph):
        report = codegen_memory_report(tiny_graph)
        plan = plan_arena(tiny_graph)
        weight_bytes = sum(t.size_bytes for t in tiny_graph.weight_tensors)
        assert report.arena_bytes == plan.arena_bytes
        assert report.persistent_bytes == 0
        assert report.runtime_sram_bytes == CODEGEN_RUNTIME_SRAM
        assert report.model_flash_bytes == (
            weight_bytes + CODEGEN_PER_OP_FLASH * len(tiny_graph.ops)
        )
        assert report.code_flash_bytes == CODEGEN_KERNEL_LIBRARY_FLASH


class TestCodegenLatency:
    @pytest.mark.parametrize("device", [SMALL, MEDIUM], ids=lambda d: d.name)
    def test_codegen_saves_exactly_the_dispatch_cost(self, tiny_graph, device):
        workload = tiny_graph.to_workload()
        interpreter_latency = LatencyModel(device).model_latency(workload)
        generated = codegen_latency(tiny_graph, device)
        dispatch = DISPATCH_CYCLES * len(workload.layers) / device.clock_hz
        assert generated == pytest.approx(interpreter_latency - dispatch)
        assert 0 < generated < interpreter_latency
