"""Checkpoint/resume + fault injection: crash on purpose, resume, compare.

The contract under test (docs/resilience.md): a run that crashes at any
instrumented site and is resumed from its checkpoint produces **bitwise
identical** results — same extracted architecture, same loss trace, same
weights — as a run that never crashed.
"""

import os

import numpy as np
import pytest

from repro import obs
from repro.errors import CheckpointError
from repro.models.spec import ArchSpec, ConvSpec, DenseSpec, GlobalPoolSpec
from repro.nas.blackbox import DSCNNSearchSpace, RandomSearch
from repro.nas.budgets import ResourceBudget
from repro.nas.search import SearchConfig, search
from repro.nas.supernet import DSCNNSupernet
from repro.nn import Adam, SGD
from repro.nn.layers import BatchNorm
from repro.nn.module import Module, Parameter
from repro.resilience import faults
from repro.resilience.checkpoint import (
    Checkpoint,
    CheckpointConfig,
    load_checkpoint,
    optimizer_state_arrays,
    optimizer_state_from_arrays,
    save_checkpoint,
)
from repro.resilience.faults import FaultPlan, FaultSpec, InjectedFault, fault_point, inject
from repro.tasks.common import TrainConfig, train_classifier


# ----------------------------------------------------------------------
# Fault plumbing
class TestFaultInjection:
    def test_disabled_site_is_noop(self):
        for _ in range(10):
            fault_point("dnas_step")  # no plan installed: must not raise

    def test_fires_on_configured_hit(self):
        with inject(FaultSpec(site="train_step", at=3)) as plan:
            fault_point("train_step")
            fault_point("train_step")
            with pytest.raises(InjectedFault) as excinfo:
                fault_point("train_step")
        assert excinfo.value.site == "train_step"
        assert excinfo.value.hit == 3
        assert plan.fired == [("train_step", 3)]

    def test_times_window_keeps_firing(self):
        with inject(FaultSpec(site="candidate_eval", at=2, times=2)) as plan:
            fault_point("candidate_eval")
            for _ in range(2):
                with pytest.raises(InjectedFault):
                    fault_point("candidate_eval")
            fault_point("candidate_eval")  # past the window
        assert plan.hits["candidate_eval"] == 4

    def test_custom_exception_type(self):
        with inject(FaultSpec(site="experiment_row", exception=RuntimeError)):
            with pytest.raises(RuntimeError):
                fault_point("experiment_row")

    def test_sites_counted_independently(self):
        with inject(FaultSpec(site="dnas_epoch", at=2)) as plan:
            fault_point("dnas_step")
            fault_point("dnas_epoch")
            fault_point("dnas_step")
        assert plan.hits == {"dnas_step": 2, "dnas_epoch": 1}

    def test_inject_clears_plan_on_exit(self):
        with inject(FaultSpec(site="train_epoch")):
            assert faults.active_plan() is not None
        assert faults.active_plan() is None
        fault_point("train_epoch")

    def test_install_replaces_and_clear_removes(self):
        first = faults.install(FaultPlan())
        second = faults.install(FaultPlan())
        assert faults.active_plan() is second and first is not second
        faults.clear()
        assert faults.active_plan() is None


# ----------------------------------------------------------------------
# Checkpoint files
class TestCheckpointFiles:
    def _sample(self):
        return Checkpoint(
            kind="dnas",
            payload={"epoch": 3, "nested": {"rng": [1, 2]}},
            arrays={"model.w": np.arange(6, dtype=np.float32).reshape(2, 3)},
        )

    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "run.npz")
        save_checkpoint(path, self._sample())
        loaded = load_checkpoint(path, expect_kind="dnas")
        assert loaded.kind == "dnas"
        assert loaded.payload == {"epoch": 3, "nested": {"rng": [1, 2]}}
        np.testing.assert_array_equal(
            loaded.arrays["model.w"], np.arange(6, dtype=np.float32).reshape(2, 3)
        )

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="does not exist"):
            load_checkpoint(str(tmp_path / "nope.npz"))

    def test_truncated_file(self, tmp_path):
        path = str(tmp_path / "run.npz")
        save_checkpoint(path, self._sample())
        blob = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(blob[: len(blob) // 2])
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_not_a_checkpoint(self, tmp_path):
        path = str(tmp_path / "other.npz")
        np.savez(path, foo=np.zeros(3))
        with pytest.raises(CheckpointError, match="no metadata"):
            load_checkpoint(path)

    def test_wrong_kind_rejected(self, tmp_path):
        path = str(tmp_path / "run.npz")
        save_checkpoint(path, self._sample())
        with pytest.raises(CheckpointError, match="expected 'train'"):
            load_checkpoint(path, expect_kind="train")

    def test_reserved_array_name_rejected(self, tmp_path):
        bad = Checkpoint(kind="x", payload={}, arrays={"__meta__": np.zeros(1)})
        with pytest.raises(CheckpointError, match="reserved"):
            save_checkpoint(str(tmp_path / "run.npz"), bad)

    def test_crash_during_write_preserves_previous(self, tmp_path):
        path = str(tmp_path / "run.npz")
        save_checkpoint(path, Checkpoint(kind="dnas", payload={"epoch": 1}))
        with inject(FaultSpec(site="checkpoint_write")):
            with pytest.raises(InjectedFault):
                save_checkpoint(path, Checkpoint(kind="dnas", payload={"epoch": 2}))
        # The half-written temp file is gone; the old snapshot survives.
        assert os.listdir(tmp_path) == ["run.npz"]
        assert load_checkpoint(path).payload == {"epoch": 1}

    def test_counters_when_obs_enabled(self, tmp_path):
        obs.enable()
        path = str(tmp_path / "run.npz")
        save_checkpoint(path, self._sample())
        load_checkpoint(path)
        counters = obs.REGISTRY.as_dict()["counters"]
        assert counters["resilience.checkpoints_written"] == 1
        assert counters["resilience.checkpoints_loaded"] == 1

    def test_due_cadence(self):
        config = CheckpointConfig(path="x.npz", every_epochs=3)
        assert [config.due(e, 8) for e in range(8)] == [
            False, False, True, False, False, True, False, True,
        ]  # every third epoch, plus the final one


# ----------------------------------------------------------------------
# State serialization building blocks
class TestStateRoundtrips:
    def _params(self, rng):
        return [
            Parameter(rng.standard_normal((3, 4)).astype(np.float32), name="a"),
            Parameter(rng.standard_normal((4,)).astype(np.float32), name="b"),
        ]

    @pytest.mark.parametrize("make_opt", [
        lambda p: Adam(p, lr=1e-2),
        lambda p: SGD(p, lr=1e-2, momentum=0.9),
    ])
    def test_optimizer_state_bitwise_roundtrip(self, rng, make_opt):
        params = self._params(rng)
        opt = make_opt(params)
        for _ in range(3):
            for p in params:
                p.grad = rng.standard_normal(p.data.shape).astype(np.float32)
            opt.step()
        arrays = optimizer_state_arrays(opt.state_dict(), "opt.")

        fresh_params = self._params(np.random.default_rng(1234))
        for p, src in zip(fresh_params, params):
            p.data = src.data.copy()
        restored = make_opt(fresh_params)
        restored.load_state_dict(
            optimizer_state_from_arrays(arrays, "opt.", opt.state_dict()["step_count"])
        )
        # One more identical step must land both optimizers on identical data.
        grads = [rng.standard_normal(p.data.shape).astype(np.float32) for p in params]
        for p, fp, g in zip(params, fresh_params, grads):
            p.grad, fp.grad = g, g.copy()
        opt.step()
        restored.step()
        for p, fp in zip(params, fresh_params):
            np.testing.assert_array_equal(p.data, fp.data)

    def test_buffers_ride_in_state_dict(self, rng):
        bn = BatchNorm(4)
        bn.train()
        from repro.tensor import Tensor

        bn(Tensor(rng.standard_normal((8, 4)).astype(np.float32)))
        state = bn.state_dict()
        assert "running_mean" in state and "running_var" in state

        fresh = BatchNorm(4)
        fresh.load_state_dict(state)
        np.testing.assert_array_equal(fresh.running_mean, bn.running_mean)
        np.testing.assert_array_equal(fresh.running_var, bn.running_var)

    def test_load_state_dict_rejects_missing_buffer(self):
        bn = BatchNorm(4)
        state = bn.state_dict()
        state.pop("running_mean")
        with pytest.raises(Exception):
            bn.load_state_dict(state)


# ----------------------------------------------------------------------
# End-to-end: crash anywhere, resume, compare bit-for-bit
def _search_inputs():
    rng = np.random.default_rng(3)
    x = rng.standard_normal((32, 13, 5, 1)).astype(np.float32)
    y = rng.integers(0, 12, size=32)
    return x, y


def _make_supernet():
    return DSCNNSupernet(
        input_shape=(13, 5, 1),
        num_classes=12,
        stem_options=(8, 16),
        num_blocks=1,
        block_options=(8, 16),
        stem_kernel=(4, 2),
        stem_stride=(2, 1),
        rng=0,
    )


_SEARCH_CONFIG = SearchConfig(epochs=3, warmup_epochs=1, batch_size=8)
_BUDGET = ResourceBudget(params=1e9, activation_bytes=1e9)


class TestDnasResume:
    @pytest.mark.parametrize(
        "spec",
        [
            FaultSpec(site="dnas_epoch", at=3),      # crash entering epoch 2
            FaultSpec(site="dnas_step", at=10),      # crash mid-epoch 2
            FaultSpec(site="checkpoint_write", at=2),  # crash publishing epoch 1's snapshot
        ],
        ids=lambda s: f"{s.site}@{s.at}",
    )
    def test_resumed_run_is_bitwise_identical(self, tmp_path, spec):
        x, y = _search_inputs()
        golden = search(_make_supernet(), x, y, _BUDGET, config=_SEARCH_CONFIG, rng=1)

        checkpoint = CheckpointConfig(path=str(tmp_path / "dnas.npz"))
        with inject(spec):
            with pytest.raises(InjectedFault):
                search(
                    _make_supernet(), x, y, _BUDGET,
                    config=_SEARCH_CONFIG, rng=1, checkpoint=checkpoint,
                )
        assert os.path.exists(checkpoint.path), "crash before any snapshot"

        resumed = search(
            _make_supernet(), x, y, _BUDGET,
            config=_SEARCH_CONFIG, rng=1, checkpoint=checkpoint,
        )
        # ArchSpec is a frozen dataclass: equality is field-by-field.
        assert resumed.arch == golden.arch
        assert resumed.history == golden.history  # bit-for-bit loss trace
        assert resumed.expected_params == golden.expected_params
        assert resumed.expected_ops == golden.expected_ops
        assert resumed.expected_memory_bytes == golden.expected_memory_bytes

    def test_resume_refuses_different_schedule(self, tmp_path):
        x, y = _search_inputs()
        checkpoint = CheckpointConfig(path=str(tmp_path / "dnas.npz"))
        search(_make_supernet(), x, y, _BUDGET, config=_SEARCH_CONFIG, rng=1,
               checkpoint=checkpoint)
        other = SearchConfig(epochs=5, warmup_epochs=1, batch_size=8)
        with pytest.raises(CheckpointError, match="different schedule"):
            search(_make_supernet(), x, y, _BUDGET, config=other, rng=1,
                   checkpoint=checkpoint)

    @pytest.mark.tier1
    def test_resume_smoke(self, tmp_path):
        """Fast gate: one-epoch interruption resumes to the golden arch."""
        x, y = _search_inputs()
        config = SearchConfig(epochs=2, warmup_epochs=1, batch_size=8)
        golden = search(_make_supernet(), x, y, _BUDGET, config=config, rng=1)
        checkpoint = CheckpointConfig(path=str(tmp_path / "smoke.npz"))
        with inject(FaultSpec(site="dnas_epoch", at=2)):
            with pytest.raises(InjectedFault):
                search(_make_supernet(), x, y, _BUDGET, config=config, rng=1,
                       checkpoint=checkpoint)
        resumed = search(_make_supernet(), x, y, _BUDGET, config=config, rng=1,
                         checkpoint=checkpoint)
        assert resumed.arch == golden.arch
        assert resumed.history["loss"] == golden.history["loss"]


class TestTrainResume:
    def _setup(self):
        arch = ArchSpec(
            name="t",
            input_shape=(8, 8, 1),
            layers=(ConvSpec(4, kernel=3, stride=2), GlobalPoolSpec(), DenseSpec(3)),
        )
        rng = np.random.default_rng(0)
        x = rng.standard_normal((24, 8, 8, 1)).astype(np.float32)
        y = rng.integers(0, 3, size=24)
        return arch, x, y, TrainConfig(epochs=3, batch_size=8, qat_bits=8)

    @pytest.mark.parametrize("site,at", [("train_epoch", 3), ("train_step", 8)])
    def test_resumed_weights_bitwise_identical(self, tmp_path, site, at):
        arch, x, y, config = self._setup()
        golden = train_classifier(arch, x, y, config, rng=5)
        checkpoint = CheckpointConfig(path=str(tmp_path / "train.npz"))
        with inject(FaultSpec(site=site, at=at)):
            with pytest.raises(InjectedFault):
                train_classifier(arch, x, y, config, rng=5, checkpoint=checkpoint)
        resumed = train_classifier(arch, x, y, config, rng=5, checkpoint=checkpoint)
        golden_state, resumed_state = golden.state_dict(), resumed.state_dict()
        assert set(golden_state) == set(resumed_state)
        for key in golden_state:  # parameters, BN stats, and QAT ranges alike
            np.testing.assert_array_equal(golden_state[key], resumed_state[key])


# ----------------------------------------------------------------------
# Graceful degradation in the black-box sweep
class TestBlackBoxDegradation:
    def _search(self, **kwargs):
        return RandomSearch(
            DSCNNSearchSpace(), ResourceBudget(params=1e9, activation_bytes=1e9), **kwargs
        )

    def test_transient_failure_absorbed_by_retry(self):
        attempts = {"n": 0}

        def evaluate(arch):
            attempts["n"] += 1
            if attempts["n"] == 1:
                raise RuntimeError("transient")
            return 1.0

        result = self._search(max_evaluations=3).run(evaluate, rng=0)
        assert result.evaluations == 3
        assert result.failures == []

    def test_persistent_failure_recorded_and_sweep_continues(self):
        def evaluate(arch):
            raise ValueError("oracle is down")

        result = self._search(max_evaluations=4, max_eval_retries=1).run(evaluate, rng=0)
        assert result.evaluations == 0
        assert result.best_arch is None
        assert result.failures  # every candidate recorded, none silently lost
        failure = result.failures[0]
        assert failure.attempts == 2  # initial try + one retry
        assert "ValueError: oracle is down" in failure.error

    def test_failed_genome_not_reproposed(self):
        seen = []

        def evaluate(arch):
            seen.append(arch.name)
            raise RuntimeError("always fails")

        search_obj = self._search(max_evaluations=4, max_eval_retries=0)
        result = search_obj.run(evaluate, rng=0)
        failed = [f.genome for f in result.failures]
        assert len(failed) == len(set(failed))  # each genome fails at most once

    def test_injected_candidate_eval_fault(self):
        with inject(FaultSpec(site="candidate_eval", at=1)):
            result = self._search(max_evaluations=3).run(lambda arch: 1.0, rng=0)
        # The injected crash hit the first attempt and the retry absorbed it.
        assert result.evaluations == 3
        assert result.failures == []

    def test_keyboard_interrupt_propagates(self):
        def evaluate(arch):
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            self._search(max_evaluations=2).run(evaluate, rng=0)


# ----------------------------------------------------------------------
# Graceful degradation in experiment sweeps
class TestExperimentAttempt:
    def _result(self):
        from repro.experiments.base import ExperimentResult

        return ExperimentResult(experiment_id="x", title="x", columns=["a"])

    def test_success_passes_value_through(self):
        from repro.experiments.base import attempt

        result = self._result()
        assert attempt(result, "row", lambda: 42) == 42
        assert result.failures == []

    def test_retry_then_success(self):
        from repro.experiments.base import attempt

        result = self._result()
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("first try fails")
            return "ok"

        assert attempt(result, "row", flaky) == "ok"
        assert result.failures == []

    def test_exhaustion_records_failure_and_note(self):
        from repro.experiments.base import attempt

        result = self._result()

        def broken():
            raise ValueError("bad row")

        assert attempt(result, "fig7:model-x", broken, retries=1) is None
        assert len(result.failures) == 1
        assert result.failures[0].label == "fig7:model-x"
        assert result.failures[0].attempts == 2
        assert any("fig7:model-x" in note for note in result.notes)

    def test_injected_experiment_row_fault_exhausts(self):
        from repro.experiments.base import attempt

        result = self._result()
        with inject(FaultSpec(site="experiment_row", at=1, times=5)):
            assert attempt(result, "row", lambda: 1, retries=1) is None
        assert len(result.failures) == 1
