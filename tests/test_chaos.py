"""Chaos plane + fault defenses: the survival-invariant harness.

Three layers under test:

* the **chaos plane** itself (:mod:`repro.resilience.faults`): seeded
  blake2b selection, ``raise | hang | slow | corrupt`` actions, keyed vs
  unkeyed hit counting, scoped installation;
* the **serve defenses** (:mod:`repro.serve.server`): per-invoke timeouts
  with hedged retry, the per-tenant circuit breaker, pool quarantine and
  health checks, and the ``REPRO_DEBUG_CHECKS`` drain audit;
* the **harness end-to-end** (:mod:`repro.chaos`): every shipped serve
  schedule and the fabric dead/hung-worker drill must report zero
  invariant violations — conservation at every drain, survivors bitwise
  equal to the fault-free run, bounded stalls, same-seed replay to
  identical stats, and a double-evaluation-free journal.

``REPRO_CHAOS_ITERS`` scales the same-seed replay count inside the
harness (default 1 extra replay; raise it for nightly soak runs).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.chaos import (
    SERVE_SCHEDULES,
    format_chaos_report,
    run_chaos_fabric,
    run_chaos_serve,
)
from repro.errors import ConfigError, GraphError
from repro.resilience import faults
from repro.resilience.faults import (
    ChaosAction,
    ChaosPlan,
    ChaosSpec,
    FaultSpec,
    InjectedFault,
    chaos_uniform,
)
from repro.runtime.passes import compile_graph
from repro.serve.bench import serving_model
from repro.serve import (
    SHED_CIRCUIT,
    SHED_EXECUTION,
    SHED_TIMEOUT,
    CircuitBreaker,
    FakeClock,
    ModelServer,
    TenantConfig,
)

pytestmark = [pytest.mark.tier1, pytest.mark.chaos]


def _tiny_graph():
    # An all-float graph: corrupt-chaos NaNs must flow through to the
    # output so the server's non-finite guard can catch them (a quantize
    # stage would cast them into finite garbage).
    return compile_graph(
        serving_model((8, 8, 1), width=4, blocks=1), level="O2"
    ).graph


def _server(tenant: TenantConfig, service_s: float = 0.001):
    clock = FakeClock()
    server = ModelServer(
        clock=clock, service_time_fn=lambda digest, n: service_s * n
    )
    digest = server.register(_tiny_graph(), tenant)
    return server, digest, clock


_PAYLOAD = np.zeros((8, 8, 1), dtype=np.float32)


# ----------------------------------------------------------------------
# The chaos plane
# ----------------------------------------------------------------------
class TestChaosPlane:
    def test_chaos_uniform_pinned(self):
        # Regression pin: these exact draws are what (seed, site, n) must
        # produce forever — changing the keying silently reshuffles every
        # recorded chaos schedule.
        assert chaos_uniform(42, "serve_invoke", 1) == 0.9245173110726695
        assert chaos_uniform(42, "serve_invoke", 2) == 0.741771332053917
        assert chaos_uniform(42, "serve_invoke", 7) == 0.7891122422896862
        assert chaos_uniform(7, "executor_task", 3) == 0.31934709303459324

    def test_rate_selection_is_order_independent(self):
        plans = [
            ChaosPlan(ChaosSpec("serve_invoke", "hang", rate=0.3, duration_s=1.0),
                      seed=9)
            for _ in range(2)
        ]
        fired = []
        for plan in plans:
            hits = [plan.action("serve_invoke") is not None for _ in range(50)]
            fired.append(tuple(hits))
        assert fired[0] == fired[1]
        assert any(fired[0]) and not all(fired[0])

    def test_at_times_window(self):
        plan = ChaosPlan(ChaosSpec("serve_invoke", "slow", at=3, times=2, factor=2.0))
        actions = [plan.action("serve_invoke") for _ in range(6)]
        assert [a is not None for a in actions] == [
            False, False, True, True, False, False
        ]
        assert actions[2].kind == "slow" and actions[2].factor == 2.0
        assert plan.fired == [("serve_invoke", 3, "slow"), ("serve_invoke", 4, "slow")]

    def test_keyed_site_counts_per_key_attempts(self):
        # keys selects work items; at/times gates each item's attempt
        # number, so "first dispatch misbehaves, the requeue recovers" is
        # expressible.
        plan = ChaosPlan(
            ChaosSpec("executor_task", "hang", keys=(1,), at=1, times=1,
                      duration_s=5.0)
        )
        assert plan.action("executor_task", key=0) is None
        first = plan.action("executor_task", key=1)
        assert first is not None and first.duration_s == 5.0
        assert plan.action("executor_task", key=1) is None  # attempt 2 recovers
        assert plan.action("executor_task", key=2) is None

    def test_raise_kind_raises_directly(self):
        plan = ChaosPlan(ChaosSpec("serve_invoke", "raise", at=1))
        with pytest.raises(InjectedFault):
            plan.action("serve_invoke")
        custom = ChaosPlan(
            ChaosSpec("serve_invoke", "raise", at=1, exception=RuntimeError)
        )
        with pytest.raises(RuntimeError, match="injected fault"):
            custom.action("serve_invoke")

    def test_corrupt_mutators_resolve_and_detectably_corrupt(self):
        spec = ChaosSpec("serve_invoke", "corrupt", mutator="nan")
        payload = np.ones((2, 2), dtype=np.float32)
        mutated = spec.resolved_mutator()(payload)
        assert np.all(np.isnan(mutated))
        assert np.all(payload == 1.0)  # mutates a copy, never the original

    @pytest.mark.parametrize(
        "kwargs,match",
        [
            (dict(kind="explode"), "chaos kind"),
            (dict(at=0), "at/times"),
            (dict(rate=1.5), "rate"),
            (dict(kind="hang", duration_s=-1.0), "duration_s"),
            (dict(kind="slow", factor=0.0), "factor"),
            (dict(kind="corrupt", mutator="zalgo"), "unknown corrupt mutator"),
        ],
    )
    def test_spec_validation(self, kwargs, match):
        with pytest.raises(ConfigError, match=match):
            ChaosSpec("serve_invoke", **kwargs)

    def test_chaos_point_is_noop_without_plan(self):
        assert faults.active_chaos() is None
        assert faults.chaos_point("serve_invoke") is None

    def test_clear_resets_both_planes(self):
        faults.install(faults.FaultPlan(FaultSpec("dnas_step", at=1)))
        faults.install_chaos(ChaosPlan(ChaosSpec("serve_invoke")))
        faults.clear()
        assert faults.active_plan() is None
        assert faults.active_chaos() is None

    def test_inject_scopes_are_independent(self):
        # A raise-only inject() block unwinding must not tear down an
        # enclosing chaos plan (and vice versa).
        with faults.inject_chaos(ChaosPlan(ChaosSpec("serve_invoke", at=10**9))):
            with faults.inject(FaultSpec("dnas_step", at=10**9)):
                pass
            assert faults.active_chaos() is not None
        assert faults.active_chaos() is None


# ----------------------------------------------------------------------
# Serve defenses: timeout + hedge, breaker, quarantine, drain audit
# ----------------------------------------------------------------------
class TestInvokeTimeoutAndHedge:
    def test_hang_is_cut_off_and_hedged(self):
        server, digest, clock = _server(
            TenantConfig(max_batch=1, max_wait_s=0.0, max_retries=1,
                         invoke_timeout_s=0.05)
        )
        plan = ChaosPlan(
            ChaosSpec("serve_invoke", "hang", at=1, times=1, duration_s=60.0)
        )
        with faults.inject_chaos(plan):
            server.submit(digest, _PAYLOAD)
            server.run_until_idle()
        (response,) = server.drain()
        assert response.ok  # the hedge recovered the request
        assert server.stats.timeouts == 1
        assert server.stats.retries == 1
        # The hang cost exactly the timeout, never its 60s duration.
        assert clock.now() < 1.0

    def test_hang_exhaustion_sheds_timeout_with_structured_detail(self):
        server, digest, _clock = _server(
            TenantConfig(max_batch=1, max_wait_s=0.0, max_retries=1,
                         invoke_timeout_s=0.05)
        )
        plan = ChaosPlan(
            ChaosSpec("serve_invoke", "hang", at=1, times=2, duration_s=60.0)
        )
        with faults.inject_chaos(plan):
            server.submit(digest, _PAYLOAD)
            server.run_until_idle()
        (response,) = server.drain()
        assert response.status == "shed"
        assert response.shed.code == SHED_TIMEOUT
        assert "0.05s deadline" in response.shed.detail
        assert "2 attempts" in response.shed.detail
        assert server.stats.timeouts == 2
        server.stats.verify_conservation(queued=0, responses=1)

    def test_short_hang_without_timeout_just_stalls(self):
        server, digest, clock = _server(
            TenantConfig(max_batch=1, max_wait_s=0.0)  # no invoke timeout
        )
        plan = ChaosPlan(
            ChaosSpec("serve_invoke", "hang", at=1, times=1, duration_s=3.0)
        )
        with faults.inject_chaos(plan):
            server.submit(digest, _PAYLOAD)
            server.run_until_idle()
        (response,) = server.drain()
        assert response.ok
        assert server.stats.timeouts == 0
        assert clock.now() >= 3.0  # the stall was paid in full

    def test_slow_chaos_times_out_when_stretched_past_deadline(self):
        server, digest, _clock = _server(
            TenantConfig(max_batch=1, max_wait_s=0.0, max_retries=1,
                         invoke_timeout_s=0.01),
            service_s=0.001,
        )
        plan = ChaosPlan(
            ChaosSpec("serve_invoke", "slow", at=1, times=1, factor=100.0)
        )
        with faults.inject_chaos(plan):
            server.submit(digest, _PAYLOAD)
            server.run_until_idle()
        (response,) = server.drain()
        assert response.ok  # hedge recovered
        assert server.stats.timeouts == 1

    def test_corrupt_chaos_detected_and_retried_with_pristine_payload(self):
        tenant = TenantConfig(max_batch=1, max_wait_s=0.0, max_retries=1)
        server, digest, _clock = _server(tenant)
        rng = np.random.default_rng(3)
        payload = rng.normal(size=(8, 8, 1)).astype(np.float32)

        reference_server, reference_digest, _ = _server(tenant)
        reference_server.submit(reference_digest, payload)
        reference_server.run_until_idle()
        (reference,) = reference_server.drain()

        plan = ChaosPlan(
            ChaosSpec("serve_invoke", "corrupt", at=1, times=1, mutator="nan")
        )
        with faults.inject_chaos(plan):
            server.submit(digest, payload)
            server.run_until_idle()
        (response,) = server.drain()
        assert response.ok
        assert server.stats.retries == 1  # the NaN output tripped the guard
        # The retry re-stacked the pristine payload: bitwise-equal output.
        assert np.array_equal(response.output, reference.output)

    def test_obs_counts_dispatches_once_and_retries_separately(self):
        obs.enable()
        server, digest, _clock = _server(
            TenantConfig(max_batch=1, max_wait_s=0.0, max_retries=2,
                         invoke_timeout_s=0.05)
        )
        plan = ChaosPlan(
            ChaosSpec("serve_invoke", "hang", at=1, times=2, duration_s=60.0)
        )
        with faults.inject_chaos(plan):
            server.submit(digest, _PAYLOAD)
            server.run_until_idle()
        (response,) = server.drain()
        assert response.ok
        counters = obs.REGISTRY.as_dict()["counters"]
        # One logical dispatch, however many attempts it hedged.
        assert counters["serve.dispatches"] == 1
        assert counters["serve.retries"] == 2
        assert counters["serve.invoke_timeouts"] == 2
        assert counters["chaos.fired.serve_invoke.hang"] == 2


class TestCircuitBreaker:
    def test_state_machine(self):
        breaker = CircuitBreaker(threshold=2, cooldown_s=1.0)
        assert breaker.state == "closed"
        assert breaker.record_failure(0.0) is False
        assert breaker.record_failure(0.1) is True  # threshold -> open
        assert breaker.state == "open"
        assert breaker.allow(0.5) is False  # cooling down
        assert breaker.allow(1.2) is True  # half-open probe
        assert breaker.state == "half_open"
        assert breaker.record_failure(1.3) is True  # probe failed -> re-open
        assert breaker.state == "open"
        assert breaker.allow(2.4) is True
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.opens == 2

    def test_breaker_sheds_at_admission_and_recovers(self):
        server, digest, clock = _server(
            TenantConfig(max_batch=1, max_wait_s=0.0, max_retries=0,
                         breaker_threshold=2, breaker_cooldown_s=5.0)
        )
        plan = ChaosPlan(ChaosSpec("serve_invoke", "raise", at=1, times=2))
        with faults.inject_chaos(plan):
            for _ in range(2):
                server.submit(digest, _PAYLOAD)
                server.run_until_idle()
            assert server.stats.breaker_opens == 1
            # Open: admissions shed with circuit_open before touching the queue.
            server.submit(digest, _PAYLOAD)
            responses = server.drain()
            rejected = [r for r in responses if r.shed and r.shed.code == SHED_CIRCUIT]
            assert len(rejected) == 1
            assert "circuit" in rejected[0].shed.detail
            # After the cooldown the half-open probe goes through and closes.
            clock.advance(6.0)
            server.submit(digest, _PAYLOAD)
            server.run_until_idle()
        (probe,) = server.drain()
        assert probe.ok
        assert server.breaker(digest).state == "closed"
        server.stats.verify_conservation(queued=0)
        failures = [r for r in responses if r.shed and r.shed.code == SHED_EXECUTION]
        assert len(failures) == 2


class TestPoolHealth:
    def test_quarantine_replenishes_lazily(self):
        server, digest, _clock = _server(
            TenantConfig(max_batch=1, max_wait_s=0.0, pool_size=1)
        )
        pool = server.pool(digest)
        interp = pool.acquire()
        pool.quarantine(interp)
        assert pool.quarantined == 1
        # The slot is free again and the next acquire builds a fresh
        # interpreter for the same compiled graph.
        replacement = pool.acquire()
        assert replacement is not interp
        pool.release(replacement)

    def test_health_check_drops_broken_interpreters(self, monkeypatch):
        server, digest, _clock = _server(
            TenantConfig(max_batch=2, max_wait_s=0.0, pool_size=2)
        )
        pool = server.pool(digest)
        first = pool._idle[0]
        monkeypatch.setattr(
            first, "invoke", lambda batch: np.full((len(batch), 3), np.nan)
        )
        dropped = pool.health_check()
        assert dropped == 1
        assert pool.quarantined == 1
        assert all(i is not first for i in pool._idle)
        # The surviving + replenished pool still serves.
        server.submit(digest, _PAYLOAD)
        server.run_until_idle()
        (response,) = server.drain()
        assert response.ok

    def test_failing_dispatch_quarantines_when_opted_in(self):
        server, digest, _clock = _server(
            TenantConfig(max_batch=1, max_wait_s=0.0, max_retries=0,
                         quarantine_failed=True)
        )
        plan = ChaosPlan(
            ChaosSpec("serve_invoke", "corrupt", at=1, times=1, mutator="inf")
        )
        with faults.inject_chaos(plan):
            server.submit(digest, _PAYLOAD)
            server.run_until_idle()
        (response,) = server.drain()
        assert response.shed.code == SHED_EXECUTION
        assert server.pool(digest).quarantined == 1


class TestDrainDebugChecks:
    def test_drain_audits_conservation_when_enabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_DEBUG_CHECKS", "1")
        server, digest, _clock = _server(TenantConfig(max_batch=1, max_wait_s=0.0))
        for _ in range(3):
            server.submit(digest, _PAYLOAD)
            server.run_until_idle()
            assert len(server.drain()) == 1  # audit passes at every drain
        # Corrupt the ledger: the *next* drain must fail loudly.
        server.stats.completed += 1
        with pytest.raises(GraphError, match="conservation violated"):
            server.drain()

    def test_audit_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_DEBUG_CHECKS", raising=False)
        server, digest, _clock = _server(TenantConfig(max_batch=1, max_wait_s=0.0))
        server.submit(digest, _PAYLOAD)
        server.run_until_idle()
        server.stats.completed += 1  # would trip the audit if it ran
        server.drain()


# ----------------------------------------------------------------------
# The harness end-to-end
# ----------------------------------------------------------------------
class TestServeHarness:
    def test_all_schedules_hold_every_invariant(self):
        report = run_chaos_serve("smoke", requests=160)
        assert report["violations"] == []
        assert report["ok"] is True
        rows = {row["name"]: row for row in report["schedules"]}
        assert set(rows) == {s.name for s in SERVE_SCHEDULES}
        # Each schedule actually fired and exercised its defense.
        assert rows["hang_storm"]["stats"]["timeouts"] > 0
        assert rows["slow_tail"]["fired_total"] > 0
        assert rows["corrupt_burst"]["stats"]["retries"] > 0
        assert rows["crash_blackout"]["stats"]["breaker_opens"] >= 1
        assert rows["crash_blackout"]["stats"]["shed"].get(SHED_CIRCUIT, 0) > 0
        # The blackout recovers: the half-open probe closes the breaker and
        # the tail of the trace is served.
        assert rows["crash_blackout"]["survivors"] > 0
        report_text = format_chaos_report(report)
        assert "all invariants held" in report_text

    def test_violations_are_reported_not_raised(self):
        # A deliberately undefended workload under the same schedules must
        # *report* broken invariants (here: unbounded stalls from 10s
        # hangs) instead of crashing the harness. Build a report by hand
        # with a nonsense baseline to prove the shape stays printable.
        report = run_chaos_serve("smoke", requests=40)
        report["violations"].append(
            {"schedule": "synthetic", "check": "bounded_stall", "detail": "x"}
        )
        text = format_chaos_report(report)
        assert "INVARIANT VIOLATION" in text and "bounded_stall" in text


@pytest.mark.fabric
class TestFabricChaos:
    def test_requeue_recovers_and_poison_quarantines(self, tmp_path):
        report = run_chaos_fabric(str(tmp_path), workers=2, task_timeout_s=0.75)
        assert report["violations"] == []
        assert report["ok"] is True
        assert report["requeues"] >= 1
        assert report["poisoned"] == 1
        assert report["poison_attempts"] == 2  # max_requeues=1 -> 2 dispatches


class TestExecutorLifecycle:
    def test_close_is_idempotent(self):
        from repro.nas.fabric import MultiprocessExecutor

        executor = MultiprocessExecutor(2)
        executor._ensure_pool()
        executor.close()
        executor.close()  # second close must be a no-op, not a crash
        executor.terminate()  # and terminate after close is safe too
        assert executor._pool is None

    def test_exception_in_with_block_terminates_pool(self):
        from repro.nas.fabric import MultiprocessExecutor

        executor = MultiprocessExecutor(2)
        with pytest.raises(RuntimeError, match="boom"):
            with executor:
                executor._ensure_pool()
                raise RuntimeError("boom")
        # The fork pool was torn down on the way out — no leaked workers.
        assert executor._pool is None
        executor.close()  # still idempotent afterwards
