"""Quantization parameters and fixed-point arithmetic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QuantizationError
from repro.quantization import (
    QuantParams,
    affine_params_from_range,
    dequantize,
    multiply_by_quantized_multiplier,
    pack_int4,
    packed_size_bytes,
    quantize,
    quantize_multiplier,
    symmetric_params_from_absmax,
    unpack_int4,
)
from repro.quantization.params import qrange, requantize


class TestQuantParams:
    def test_qrange(self):
        assert qrange(8) == (-128, 127)
        assert qrange(4) == (-8, 7)

    def test_qrange_rejects_bad_bits(self):
        with pytest.raises(QuantizationError):
            qrange(1)

    def test_negative_scale_rejected(self):
        with pytest.raises(QuantizationError):
            QuantParams(scale=np.array([-1.0]), zero_point=0)

    def test_zero_point_range_checked(self):
        with pytest.raises(QuantizationError):
            QuantParams(scale=np.array([0.1]), zero_point=500, bits=8)

    def test_per_channel_flag(self):
        assert QuantParams(scale=np.array([0.1, 0.2]), zero_point=0).per_channel
        assert not QuantParams(scale=np.array([0.1]), zero_point=0).per_channel


class TestAffineParams:
    def test_range_includes_zero(self):
        params = affine_params_from_range(2.0, 6.0)
        # Zero must be exactly representable.
        zero_real = dequantize(np.array([params.zero_point], dtype=np.int8), params)
        assert abs(zero_real[0]) < 1e-9

    def test_relu_range(self):
        params = affine_params_from_range(0.0, 6.0)
        assert params.zero_point == -128

    @given(low=st.floats(-10, 0), high=st.floats(0.01, 10))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_error_below_half_lsb(self, low, high):
        params = affine_params_from_range(low, high)
        values = np.linspace(low, high, 64).astype(np.float32)
        recovered = dequantize(quantize(values, params), params)
        assert np.abs(recovered - values).max() <= params.scale[0] * 0.51

    def test_degenerate_range(self):
        params = affine_params_from_range(0.0, 0.0)
        assert params.scale[0] > 0


class TestSymmetricParams:
    def test_per_channel(self):
        params = symmetric_params_from_absmax(np.array([1.0, 2.0, 4.0]))
        assert params.per_channel
        assert params.zero_point == 0
        assert np.allclose(params.scale * 127, [1.0, 2.0, 4.0], rtol=1e-5)

    def test_quantize_saturates(self):
        params = symmetric_params_from_absmax(np.array([1.0]))
        q = quantize(np.array([5.0]), params)
        assert q[0] == 127


class TestQuantizeMultiplier:
    @given(st.floats(1e-6, 0.999))
    @settings(max_examples=100, deadline=None)
    def test_reconstruction(self, real):
        mantissa, shift = quantize_multiplier(real)
        reconstructed = mantissa * (2.0 ** (shift - 31))
        assert abs(reconstructed - real) / real < 1e-6

    def test_rejects_nonpositive(self):
        with pytest.raises(QuantizationError):
            quantize_multiplier(0.0)

    @given(st.integers(-(2**20), 2**20), st.floats(1e-4, 0.99))
    @settings(max_examples=100, deadline=None)
    def test_fixed_point_matches_float(self, acc, multiplier):
        mantissa, shift = quantize_multiplier(multiplier)
        fixed = multiply_by_quantized_multiplier(np.array([acc]), mantissa, shift)[0]
        expected = round(acc * multiplier)
        assert abs(int(fixed) - expected) <= 1

    def test_vectorized(self):
        mantissa, shift = quantize_multiplier(0.25)
        acc = np.array([100, -100, 4, -4, 0])
        out = multiply_by_quantized_multiplier(acc, mantissa, shift)
        assert np.array_equal(out, [25, -25, 1, -1, 0])


class TestRequantize:
    def test_per_tensor(self):
        acc = np.array([400, -400])
        out = requantize(acc, np.array([0.01]), 0.1, 0, bits=8)
        assert np.array_equal(out, [40, -40])

    def test_saturation(self):
        acc = np.array([10_000_000])
        out = requantize(acc, np.array([0.5]), 0.5, 0, bits=8)
        assert out[0] == 127

    def test_per_channel(self):
        acc = np.array([[100, 100]])
        out = requantize(acc, np.array([0.01, 0.02]), 0.1, 0, bits=8)
        assert np.array_equal(out[0], [10, 20])

    def test_per_channel_mismatch_raises(self):
        with pytest.raises(QuantizationError):
            requantize(np.zeros((2, 3), dtype=np.int64), np.array([0.1, 0.2]), 0.1, 0)

    def test_zero_point_applied(self):
        out = requantize(np.array([0]), np.array([1.0]), 1.0, 5, bits=8)
        assert out[0] == 5


class TestInt4Packing:
    @given(st.lists(st.integers(-8, 7), min_size=0, max_size=33))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip(self, values):
        arr = np.array(values, dtype=np.int8)
        packed = pack_int4(arr)
        assert packed.nbytes == (len(values) + 1) // 2
        recovered = unpack_int4(packed, len(values))
        assert np.array_equal(recovered, arr)

    def test_out_of_range_rejected(self):
        with pytest.raises(QuantizationError):
            pack_int4(np.array([8], dtype=np.int8))

    def test_unpack_count_checked(self):
        with pytest.raises(QuantizationError):
            unpack_int4(np.zeros(1, dtype=np.uint8), 3)

    def test_packed_size(self):
        assert packed_size_bytes(10, 8) == 10
        assert packed_size_bytes(10, 4) == 5
        assert packed_size_bytes(11, 4) == 6
        with pytest.raises(QuantizationError):
            packed_size_bytes(10, 3)

    def test_negative_values_sign_extended(self):
        arr = np.array([-8, -1, 7, 0], dtype=np.int8)
        assert np.array_equal(unpack_int4(pack_int4(arr), 4), arr)
