"""The deploy-path hardening layer: ``repro.validate`` + its wiring.

Covers the graph invariant checker (one test per invariant class), the
deploy-time budget guardrails (:class:`DeploymentError` naming the tensors
live at the SRAM peak), the interpreter's pre-dispatch operand checks, the
training divergence watchdog with checkpoint rollback, and the ``repro
validate`` CLI (happy path plus one rejection per error class).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.errors import (
    DeploymentError,
    DivergenceError,
    GraphError,
    ModelFormatError,
    ReproError,
)
from repro.hw.devices import MCUDevice
from repro.quantization.params import QuantParams
from repro.runtime.graph import Graph, OpNode, TensorSpec
from repro.runtime.interpreter import Interpreter
from repro.runtime.serializer import serialize
from repro.validate import peak_sram_tensors, validate_deployment, validate_graph

pytestmark = pytest.mark.tier1


def _dense_graph() -> Graph:
    """Minimal valid float graph: x -> dense -> y."""
    g = Graph(name="t")
    g.add_tensor(TensorSpec("x", (4,), dtype="float32", kind="input"))
    g.add_tensor(
        TensorSpec(
            "w", (4, 3), dtype="float32", kind="weight",
            data=np.zeros((4, 3), dtype=np.float32),
        )
    )
    g.add_tensor(
        TensorSpec(
            "b", (3,), dtype="float32", kind="bias",
            data=np.zeros((3,), dtype=np.float32),
        )
    )
    g.add_tensor(TensorSpec("y", (3,), dtype="float32", kind="output"))
    g.add_op(OpNode("dense", "fc", ["x", "w", "b"], ["y"]))
    g.inputs = ["x"]
    g.outputs = ["y"]
    return g


def _tiny_device(sram: int = 1 << 30, flash: int = 1 << 30) -> MCUDevice:
    return MCUDevice(
        name="unit-test-mcu", core="cortex-m4", clock_hz=1e8,
        sram_bytes=sram, eflash_bytes=flash,
        active_power_w=0.1, sleep_power_w=0.001, dual_issue=False, price_usd=1.0,
    )


class TestValidateGraph:
    def test_valid_graph_passes_and_returns_graph(self):
        g = _dense_graph()
        assert validate_graph(g) is g

    def test_opless_passthrough_accepted(self):
        # The planner supports op-less graphs (identity deployments); the
        # deploy-path checker must not be stricter than the planner.
        g = Graph(name="pass")
        g.add_tensor(TensorSpec("x", (4,), dtype="float32", kind="input"))
        g.inputs = ["x"]
        g.outputs = ["x"]
        assert validate_graph(g) is g

    def test_missing_boundary_tensor(self):
        g = _dense_graph()
        g.outputs = ["ghost"]
        with pytest.raises(GraphError, match="boundary tensor 'ghost' missing"):
            validate_graph(g)

    def test_duplicate_graph_input(self):
        g = _dense_graph()
        g.inputs = ["x", "x"]
        with pytest.raises(GraphError, match="duplicate graph input"):
            validate_graph(g)

    def test_negative_dimension(self):
        g = _dense_graph()
        g.tensors["y"].shape = (-3,)
        with pytest.raises(GraphError, match="negative dimension"):
            validate_graph(g)

    def test_unknown_dtype(self):
        g = _dense_graph()
        g.tensors["x"].dtype = "float64"
        with pytest.raises(GraphError, match="unknown dtype"):
            validate_graph(g)

    def test_data_shape_mismatch(self):
        g = _dense_graph()
        g.tensors["w"].data = np.zeros((2, 2), dtype=np.float32)
        with pytest.raises(GraphError, match="stored data shape"):
            validate_graph(g)

    def test_nonfinite_float_weights(self):
        g = _dense_graph()
        g.tensors["w"].data = np.full((4, 3), np.nan, dtype=np.float32)
        with pytest.raises(GraphError, match="non-finite"):
            validate_graph(g)

    def test_nan_quant_scale(self):
        # QuantParams' own `scale <= 0` guard passes NaN through; the
        # deploy-path checker must not.
        g = _dense_graph()
        q = QuantParams(scale=np.array([1.0]), zero_point=0, bits=8)
        object.__setattr__(q, "scale", np.array([np.nan]))
        g.tensors["y"].quant = q
        with pytest.raises(GraphError, match="finite and > 0"):
            validate_graph(g)

    def test_per_channel_scale_count_mismatch(self):
        g = _dense_graph()
        g.tensors["w"].quant = QuantParams(
            scale=np.array([0.1, 0.1]), zero_point=0, bits=8
        )
        with pytest.raises(GraphError, match="per-channel scale count"):
            validate_graph(g)

    def test_int4_bits_mismatch(self):
        g = _dense_graph()
        g.tensors["w"].dtype = "int4"
        g.tensors["w"].data = np.zeros((4, 3), dtype=np.int8)
        g.tensors["w"].quant = QuantParams(scale=np.array([0.1]), zero_point=0, bits=8)
        with pytest.raises(GraphError, match="int4 tensor carries 8-bit"):
            validate_graph(g)

    def test_int4_data_out_of_range(self):
        g = _dense_graph()
        g.tensors["w"].dtype = "int4"
        g.tensors["w"].data = np.full((4, 3), 100, dtype=np.int8)
        g.tensors["w"].quant = QuantParams(scale=np.array([0.1]), zero_point=0, bits=4)
        with pytest.raises(GraphError, match=r"int4 data outside \[-8, 7\]"):
            validate_graph(g)

    def test_wrong_weight_rank(self):
        g = _dense_graph()
        g.tensors["w"].shape = (2, 2, 3)
        g.tensors["w"].data = np.zeros((2, 2, 3), dtype=np.float32)
        with pytest.raises(GraphError, match="rank 3, expected 2"):
            validate_graph(g)

    def test_weight_operand_wrong_kind(self):
        g = _dense_graph()
        g.tensors["w"].kind = "activation"
        with pytest.raises(GraphError, match="expected 'weight'"):
            validate_graph(g)

    def test_bias_size_mismatch(self):
        g = _dense_graph()
        g.tensors["b"].shape = (5,)
        g.tensors["b"].data = np.zeros((5,), dtype=np.float32)
        with pytest.raises(GraphError, match="bias 'b' has 5 elements"):
            validate_graph(g)

    def test_dense_feature_mismatch(self):
        g = _dense_graph()
        g.tensors["x"].shape = (6,)
        with pytest.raises(GraphError, match="has 6 features, weight expects 4"):
            validate_graph(g)

    def test_add_shape_mismatch(self):
        g = Graph(name="t")
        g.add_tensor(TensorSpec("a", (4,), dtype="float32", kind="input"))
        g.add_tensor(TensorSpec("b", (5,), dtype="float32", kind="input"))
        g.add_tensor(TensorSpec("y", (4,), dtype="float32", kind="output"))
        g.add_op(OpNode("add", "sum", ["a", "b"], ["y"]))
        g.inputs = ["a", "b"]
        g.outputs = ["y"]
        with pytest.raises(GraphError, match="add operands/output disagree"):
            validate_graph(g)

    def test_reshape_element_count_change(self):
        g = Graph(name="t")
        g.add_tensor(TensorSpec("x", (4,), dtype="float32", kind="input"))
        g.add_tensor(TensorSpec("y", (5,), dtype="float32", kind="output"))
        g.add_op(OpNode("reshape", "r", ["x"], ["y"]))
        g.inputs = ["x"]
        g.outputs = ["y"]
        with pytest.raises(GraphError, match="reshape changes element count"):
            validate_graph(g)

    def test_pool_missing_attr(self):
        g = Graph(name="t")
        g.add_tensor(TensorSpec("x", (4, 4, 2), dtype="float32", kind="input"))
        g.add_tensor(TensorSpec("y", (2, 2, 2), dtype="float32", kind="output"))
        g.add_op(OpNode("avg_pool", "p", ["x"], ["y"]))
        g.inputs = ["x"]
        g.outputs = ["y"]
        with pytest.raises(GraphError, match="missing required 'pool'"):
            validate_graph(g)

    def test_duplicate_op_name(self):
        g = _dense_graph()
        g.add_tensor(TensorSpec("y2", (3,), dtype="float32", kind="output"))
        g.add_op(OpNode("softmax", "fc", ["y"], ["y2"]))
        with pytest.raises(GraphError, match="duplicate op name"):
            validate_graph(g)

    def test_use_before_produce_rules_out_cycles(self):
        g = Graph(name="t")
        for n in ("x", "t1", "t2"):
            g.add_tensor(TensorSpec(n, (4,), dtype="float32",
                                    kind="input" if n == "x" else "activation"))
        # op1 consumes op2's output and vice versa: a dataflow cycle, which
        # can never be put in a valid schedule order.
        g.add_op(OpNode("add", "op1", ["x", "t2"], ["t1"]))
        g.add_op(OpNode("add", "op2", ["t1", "x"], ["t2"]))
        g.inputs = ["x"]
        g.outputs = ["t2"]
        with pytest.raises(GraphError, match="used before it is produced"):
            validate_graph(g)

    def test_output_never_produced(self):
        g = _dense_graph()
        g.add_tensor(TensorSpec("orphan", (3,), dtype="float32", kind="output"))
        g.outputs = ["orphan"]
        with pytest.raises(GraphError, match="never produced"):
            validate_graph(g)

    def test_reject_bumps_obs_counter(self):
        obs.enable()
        try:
            before = obs.REGISTRY.counter("validate.rejects").value
            g = _dense_graph()
            g.outputs = ["ghost"]
            with pytest.raises(GraphError):
                validate_graph(g)
            assert obs.REGISTRY.counter("validate.rejects").value == before + 1
        finally:
            obs.disable()


class TestValidateDeployment:
    def test_fitting_model_returns_memory_report(self):
        memory = validate_deployment(_dense_graph(), _tiny_device())
        assert memory.total_sram > 0 and memory.total_flash > 0

    def test_sram_overflow_names_live_tensors(self):
        g = _dense_graph()
        device = _tiny_device(sram=64)
        with pytest.raises(DeploymentError) as excinfo:
            validate_deployment(g, device)
        message = str(excinfo.value)
        assert "peak SRAM" in message
        assert "live tensors" in message
        # The offenders at the peak are named with their lifetimes.
        assert "x (" in message or "y (" in message
        assert "unit-test-mcu" in message

    def test_flash_overflow_reports_breakdown(self):
        g = _dense_graph()
        device = _tiny_device(flash=16)
        with pytest.raises(DeploymentError, match="flash .* exceeds"):
            validate_deployment(g, device)

    def test_peak_sram_tensors_sorted_largest_first(self):
        arena, peak_step, offenders = peak_sram_tensors(_dense_graph())
        assert arena > 0
        assert offenders
        sizes = [t.size_bytes for t in offenders]
        assert sizes == sorted(sizes, reverse=True)
        assert all(t.first_use <= peak_step <= t.last_use for t in offenders)

    def test_require_deployable_uses_guardrail_message(self):
        from repro.runtime.deploy import require_deployable

        with pytest.raises(DeploymentError, match="live tensors"):
            require_deployable(_dense_graph(), _tiny_device(sram=64))

    def test_codegen_rejects_overbudget_device(self):
        from repro.runtime.codegen import generate_c_source

        with pytest.raises(DeploymentError):
            generate_c_source(_dense_graph(), device=_tiny_device(sram=64))
        assert "net_invoke" in generate_c_source(_dense_graph(), device=_tiny_device())


class TestInterpreterOperandChecks:
    # Operand re-verification runs per dispatch only under debug_checks
    # (construction-time validation covers static graphs); these tamper
    # with the graph *after* construction, so they opt in.
    def test_constant_data_shape_tampered_after_construction(self):
        g = _dense_graph()
        interp = Interpreter(g, debug_checks=True)
        g.tensors["w"].data = np.zeros((2, 2), dtype=np.float32)
        with pytest.raises(GraphError, match="data shape"):
            interp.invoke(np.zeros((1, 4), dtype=np.float32))

    def test_constant_data_removed(self):
        g = _dense_graph()
        interp = Interpreter(g, debug_checks=True)
        g.tensors["w"].data = None
        with pytest.raises(GraphError, match="has no data"):
            interp.invoke(np.zeros((1, 4), dtype=np.float32))

    def test_activation_shape_mismatch(self):
        g = _dense_graph()
        g.add_tensor(TensorSpec("p", (3,), dtype="float32", kind="output"))
        g.add_op(OpNode("softmax", "sm", ["y"], ["p"]))
        g.outputs = ["p"]
        interp = Interpreter(g, debug_checks=True)
        g.tensors["y"].shape = (7,)  # lie about the intermediate's shape
        with pytest.raises(GraphError, match="per example, spec says"):
            interp.invoke(np.zeros((1, 4), dtype=np.float32))

    def test_debug_checks_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_DEBUG_CHECKS", "1")
        assert Interpreter(_dense_graph()).debug_checks
        monkeypatch.setenv("REPRO_DEBUG_CHECKS", "0")
        assert not Interpreter(_dense_graph()).debug_checks

    def test_activation_dtype_family_mismatch(self):
        g = _dense_graph()
        interp = Interpreter(g)
        g.tensors["x"].dtype = "int8"  # a float value where ints are declared
        with pytest.raises(GraphError, match="requires an integer array"):
            interp._check_operands(g.ops[0], {"x": np.zeros((1, 4), dtype=np.float32)})

    def test_unknown_tensor_reference(self):
        g = _dense_graph()
        interp = Interpreter(g)
        g.ops[0].inputs[0] = "ghost"
        with pytest.raises(GraphError, match="unknown tensor 'ghost'"):
            interp._check_operands(g.ops[0], {})

    def test_malformed_graph_rejected_at_construction(self):
        g = _dense_graph()
        g.tensors["w"].data = np.zeros((2, 2), dtype=np.float32)
        with pytest.raises(GraphError):
            Interpreter(g)


class TestDivergenceWatchdog:
    def _arch(self):
        from repro.models.spec import ArchSpec, ConvSpec, DenseSpec, GlobalPoolSpec

        return ArchSpec(
            name="watchdog-tiny",
            input_shape=(8, 8, 1),
            layers=(ConvSpec(4, kernel=3, stride=2), GlobalPoolSpec(), DenseSpec(3)),
        )

    def _data(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(16, 8, 8, 1)).astype(np.float32)
        y = rng.integers(0, 3, size=16)
        return x, y

    def test_check_training_step_rejects_nonfinite_loss(self):
        from repro.tasks.common import _check_training_step

        with pytest.raises(DivergenceError, match="loss is nan"):
            _check_training_step(float("nan"), [], "a", 0, 0)

    def test_check_training_step_rejects_nonfinite_grads(self):
        import types

        from repro.tasks.common import _check_training_step

        params = [types.SimpleNamespace(grad=np.array([np.inf], dtype=np.float32))]
        with pytest.raises(DivergenceError, match="gradient norm"):
            _check_training_step(0.5, params, "a", 1, 2)

    def test_divergence_without_checkpoint_propagates(self, monkeypatch):
        from repro.tasks import common
        from repro.tasks.common import TrainConfig, train_classifier

        def always_diverge(loss_value, params, arch_name, epoch, step):
            raise DivergenceError("injected")

        monkeypatch.setattr(common, "_check_training_step", always_diverge)
        x, y = self._data()
        config = TrainConfig(epochs=1, batch_size=8, qat_bits=None)
        with pytest.raises(DivergenceError, match="injected"):
            train_classifier(self._arch(), x, y, config, rng=0, num_classes=3)

    def test_rollback_once_then_finish(self, tmp_path, monkeypatch):
        from repro.resilience.checkpoint import CheckpointConfig
        from repro.tasks import common
        from repro.tasks.common import TrainConfig, train_classifier

        real = common._check_training_step
        injected = {"n": 0}

        def diverge_once(loss_value, params, arch_name, epoch, step):
            if epoch == 1 and injected["n"] == 0:
                injected["n"] += 1
                raise DivergenceError("injected NaN")
            return real(loss_value, params, arch_name, epoch, step)

        monkeypatch.setattr(common, "_check_training_step", diverge_once)
        x, y = self._data()
        config = TrainConfig(epochs=3, batch_size=8, qat_bits=None)
        events = []
        module = train_classifier(
            self._arch(), x, y, config, rng=0, num_classes=3,
            checkpoint=CheckpointConfig(path=str(tmp_path / "train.npz")),
            events=events,
        )
        assert module is not None
        assert injected["n"] == 1
        assert len(events) == 1
        event = events[0]
        assert event["event"] == "divergence_rollback"
        assert event["failed_epoch"] == 1
        assert event["resume_epoch"] == 1  # epoch 0's snapshot -> retry epoch 1
        assert event["lr_scale"] == 0.5  # retry is not a bit-identical replay
        assert "injected NaN" in event["error"]

    def test_second_divergence_propagates(self, tmp_path, monkeypatch):
        from repro.resilience.checkpoint import CheckpointConfig
        from repro.tasks import common
        from repro.tasks.common import TrainConfig, train_classifier

        def diverge_late(loss_value, params, arch_name, epoch, step):
            if epoch >= 1:
                raise DivergenceError("persistent")

        monkeypatch.setattr(common, "_check_training_step", diverge_late)
        x, y = self._data()
        config = TrainConfig(epochs=3, batch_size=8, qat_bits=None)
        with pytest.raises(DivergenceError, match="persistent"):
            train_classifier(
                self._arch(), x, y, config, rng=0, num_classes=3,
                checkpoint=CheckpointConfig(path=str(tmp_path / "train.npz")),
            )


# ----------------------------------------------------------------------
# The ``repro validate`` CLI.
GOLDEN = "tests/fixtures/golden_tiny.mbuf"


def _fat_model_bytes() -> bytes:
    """A valid model whose activations dwarf a small MCU's SRAM."""
    g = Graph(name="fat")
    g.add_tensor(TensorSpec("x", (128, 128, 8), dtype="int8", kind="input"))
    g.add_tensor(TensorSpec("y", (64, 64, 8), dtype="int8", kind="output"))
    g.add_op(OpNode("avg_pool", "p", ["x"], ["y"], attrs={"pool": 2}))
    g.inputs = ["x"]
    g.outputs = ["y"]
    return serialize(g)


class TestValidateCli:
    def _main(self, *argv):
        from repro.__main__ import main

        return main(list(argv))

    def test_happy_path(self, capsys):
        assert self._main("validate", GOLDEN) == 0
        out = capsys.readouterr().out
        assert "'golden-tiny': OK" in out
        assert "peak SRAM" in out

    def test_device_fits(self, capsys):
        assert self._main("validate", GOLDEN, "--device", "STM32F446RE") == 0
        out = capsys.readouterr().out
        assert "fits STM32F446RE" in out
        assert "SRAM margin" in out

    def test_missing_file_is_usage_error(self, capsys):
        assert self._main("validate", "no/such/model.mbuf") == 2
        assert "no such model file" in capsys.readouterr().err

    def test_unknown_device_is_usage_error(self, capsys):
        assert self._main("validate", GOLDEN, "--device", "Z80") == 2
        assert capsys.readouterr().err

    def test_truncated_model_rejected(self, tmp_path, capsys):
        blob = open(GOLDEN, "rb").read()
        path = tmp_path / "trunc.mbuf"
        path.write_bytes(blob[: len(blob) // 2])
        assert self._main("validate", str(path)) == 1
        err = capsys.readouterr().err
        assert "REJECTED" in err and "ModelFormatError" in err

    def test_bad_magic_rejected(self, tmp_path, capsys):
        blob = bytearray(open(GOLDEN, "rb").read())
        blob[:4] = b"NOPE"
        path = tmp_path / "magic.mbuf"
        path.write_bytes(bytes(blob))
        assert self._main("validate", str(path)) == 1
        assert "ModelFormatError" in capsys.readouterr().err

    def test_sram_overflow_rejected_with_offending_tensors(self, tmp_path, capsys):
        # Acceptance criterion: a model whose peak SRAM exceeds the device
        # is rejected with a DeploymentError naming the offending tensors.
        path = tmp_path / "fat.mbuf"
        path.write_bytes(_fat_model_bytes())
        assert self._main("validate", str(path), "--device", "STM32F446RE") == 1
        captured = capsys.readouterr()
        assert "REJECTED for STM32F446RE" in captured.err
        assert "live tensors" in captured.err
        assert "x (131072 B" in captured.err  # the offender, with its size

    def test_fuzz_flag_reports_summary(self, capsys):
        assert self._main("validate", GOLDEN, "--fuzz", "40", "--seed", "7") == 0
        out = capsys.readouterr().out
        assert "fuzz seed=7 iters=40" in out
        assert "0 ESCAPES" in out


class TestErrorTaxonomy:
    def test_model_format_error_is_graph_and_repro_error(self):
        err = ModelFormatError("boom", offset=12)
        assert isinstance(err, GraphError)
        assert isinstance(err, ReproError)
        assert err.offset == 12
        assert "byte offset 12" in str(err)

    def test_divergence_error_is_repro_error(self):
        assert isinstance(DivergenceError("x"), ReproError)
