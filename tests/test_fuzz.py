"""Deterministic mutation fuzzing of the microbuffer deserializer.

The deployment contract under test: any byte string fed to ``deserialize``
either yields a validated graph or raises a ``ReproError`` subclass — never
a raw ``struct.error``/``KeyError``/``UnicodeDecodeError``/numpy
``ValueError``, and never a silently corrupted graph.

The smoke run covers 1000 seeded mutants per run in tier-1 (fast: the
golden fixture is ~1.7 KB); set ``REPRO_FUZZ_ITERS`` to fuzz deeper::

    REPRO_FUZZ_ITERS=20000 PYTHONPATH=src python -m pytest -m fuzz tests/test_fuzz.py
"""

from __future__ import annotations

import json
import os
import pathlib

import numpy as np
import pytest

from repro import obs
from repro.errors import ReproError
from repro.runtime.serializer import deserialize, serialize
from repro.validate import (
    MUTATORS,
    fuzz_model_bytes,
    mutant_at,
    replay_recipe,
)

pytestmark = [pytest.mark.tier1, pytest.mark.fuzz]

FIXTURE_DIR = pathlib.Path(__file__).parent / "fixtures"
BASE = (FIXTURE_DIR / "golden_tiny.mbuf").read_bytes()
CORPUS = json.loads((FIXTURE_DIR / "fuzz_regression.json").read_text())

#: Bounded smoke depth by default; REPRO_FUZZ_ITERS unlocks full depth.
ITERATIONS = int(os.environ.get("REPRO_FUZZ_ITERS", "1000"))


class TestDeterminism:
    def test_mutant_at_is_pure(self):
        for index in (0, 1, 17, 731):
            a_bytes, a_name = mutant_at(BASE, seed=3, index=index)
            b_bytes, b_name = mutant_at(BASE, seed=3, index=index)
            assert a_bytes == b_bytes and a_name == b_name

    def test_distinct_indices_differ(self):
        blobs = {mutant_at(BASE, seed=0, index=i)[0] for i in range(32)}
        assert len(blobs) > 16  # mutators genuinely vary across indices

    def test_fuzz_report_is_reproducible(self):
        a = fuzz_model_bytes(BASE, iterations=64, seed=5)
        b = fuzz_model_bytes(BASE, iterations=64, seed=5)
        assert [(o.status, o.mutator, o.error_type) for o in a.outcomes] == [
            (o.status, o.mutator, o.error_type) for o in b.outcomes
        ]

    def test_all_mutators_reachable(self):
        names = {mutant_at(BASE, seed=0, index=i)[1] for i in range(128)}
        assert names == {name for name, _ in MUTATORS}


class TestFuzzContract:
    def test_no_escapes(self):
        """The acceptance criterion: mutants raise only ReproError subclasses."""
        report = fuzz_model_bytes(BASE, iterations=ITERATIONS, seed=0)
        assert report.counts["escape"] == 0, report.summary() + "".join(
            f"\n  #{e.index} {e.mutator}: {e.error_type}: {e.message}"
            for e in report.escapes[:10]
        )
        # A fixture this small still must reject the bulk of random damage.
        assert report.counts["rejected"] > report.counts["accepted"]

    def test_accepted_mutants_roundtrip(self):
        """Accepted mutants are *valid different models*: they re-serialize
        and re-parse, so acceptance is never silent corruption."""
        report = fuzz_model_bytes(BASE, iterations=256, seed=1)
        accepted = [o for o in report.outcomes if o.status == "accepted"]
        assert accepted  # weight-byte flips should land sometimes
        for outcome in accepted[:16]:
            mutated, _ = mutant_at(BASE, seed=1, index=outcome.index)
            graph = deserialize(mutated)
            again = serialize(graph)
            deserialize(again)  # parse(print(parse(x))) must close

    def test_escape_counter_increments(self):
        obs.enable()
        try:
            from repro.validate import fuzz as fuzz_mod

            before = obs.REGISTRY.counter("validate.fuzz_escapes").value
            status, error_type, _ = fuzz_mod._try_mutant(BASE)
            assert status == "accepted"  # unmutated base parses
            assert obs.REGISTRY.counter("validate.fuzz_escapes").value == before
        finally:
            obs.disable()


class TestRegressionCorpus:
    def test_corpus_points_at_this_fixture(self):
        assert CORPUS["base_fixture"] == "golden_tiny.mbuf"
        assert CORPUS["recipes"]

    def test_corpus_covers_both_reject_classes(self):
        kinds = {r["error_type"] for r in CORPUS["recipes"]}
        assert {"ModelFormatError", "GraphError"} <= kinds
        assert None in kinds  # plus accepted (valid-different-model) entries

    @pytest.mark.parametrize(
        "recipe",
        CORPUS["recipes"],
        ids=[f"s{r['seed']}i{r['index']}-{r['mutator']}" for r in CORPUS["recipes"]],
    )
    def test_replay(self, recipe):
        status, error_type, message = replay_recipe(BASE, recipe)
        assert status != "escape", f"{recipe} escaped: {error_type}: {message}"
        if recipe["error_type"] is not None:
            # Historically-rejected damage must stay rejected; the exact
            # error class may legitimately tighten (GraphError -> subclass).
            assert status == "rejected"
        else:
            assert status == "accepted"

    def test_stale_recipe_detected(self):
        recipe = dict(CORPUS["recipes"][0])
        recipe["mutator"] = "not-a-mutator"
        with pytest.raises(ReproError, match="no longer reproduces"):
            replay_recipe(BASE, recipe)


class TestRoundTripProperty:
    """serialize(deserialize(b)) == b over the valid corpus."""

    def test_golden_fixture(self):
        assert serialize(deserialize(BASE)) == BASE

    @pytest.mark.parametrize("quantized", [True, False])
    def test_exported_graphs(self, quantized):
        from repro.models.spec import (
            ArchSpec,
            ConvSpec,
            DenseSpec,
            GlobalPoolSpec,
            export_float_graph,
            export_graph,
        )
        from repro.tensor import backend_scope

        arch = ArchSpec(
            name="rt-tiny",
            input_shape=(8, 8, 1),
            layers=(ConvSpec(4, kernel=3, stride=2), GlobalPoolSpec(), DenseSpec(3)),
        )
        rng = np.random.default_rng(0)
        calibration = rng.normal(size=(8, 8, 8, 1)).astype(np.float32)
        with backend_scope("einsum"):
            if quantized:
                graph = export_graph(arch, calibration=calibration, bits=8)
            else:
                graph = export_float_graph(arch)
        blob = serialize(graph)
        assert serialize(deserialize(blob)) == blob
