"""The serving layer: clocks, registry, pools, and the micro-batching server.

Everything runs under a :class:`~repro.serve.clock.FakeClock`, so every
scheduling decision — coalescing, deadline ordering, shedding, retry
backoff — is a deterministic function of the submitted trace. The two
property suites the issue calls out live here:

* **batch-coalescing parity** — micro-batched responses are bitwise
  identical to serial batch-1 execution, for float and quantized compiled
  graphs, across coalesce sizes {1, 3, max_batch};
* **overload conservation** — a saturated server sheds with structured
  reasons and never silently drops a request
  (``admitted + shed == submitted``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.errors import DeploymentError, GraphError
from repro.hw.devices import DEVICES
from repro.models.spec import ArchSpec, ConvSpec, DenseSpec, DWConvSpec, GlobalPoolSpec, export_graph
from repro.runtime.interpreter import Interpreter
from repro.runtime.passes import compile_graph
from repro.runtime.serializer import serialize
from repro.serve import (
    SHED_DEADLINE,
    SHED_EXECUTION,
    SHED_QUEUE_FULL,
    FakeClock,
    InterpreterPool,
    ModelRegistry,
    ModelServer,
    MonotonicClock,
    ServerStats,
    TenantConfig,
    model_digest,
)

pytestmark = pytest.mark.tier1


def _random_arch(seed: int) -> ArchSpec:
    """A small random conv/dw/dense architecture, deterministic in seed."""
    rng = np.random.default_rng(seed)
    width = int(rng.choice([4, 8]))
    layers = [ConvSpec(width, kernel=3, stride=2)]
    if rng.random() < 0.5:
        layers.append(DWConvSpec(kernel=3, stride=1))
    layers += [ConvSpec(width, kernel=1), GlobalPoolSpec(), DenseSpec(4)]
    return ArchSpec(name=f"serve-rand-{seed}", input_shape=(10, 10, 1), layers=tuple(layers))


def _compiled(seed: int, bits: int):
    graph = export_graph(_random_arch(seed), bits=bits)
    return compile_graph(graph, level="O2").graph


# ----------------------------------------------------------------------
class TestClocks:
    def test_fake_clock_is_manual(self):
        clock = FakeClock(start=5.0)
        assert clock.now() == 5.0
        clock.advance(1.5)
        clock.sleep(0.5)
        assert clock.now() == 7.0
        assert clock.sleeps == [0.5]
        clock.advance_to(10.0)
        clock.advance_to(3.0)  # no going backwards
        assert clock.now() == 10.0

    def test_fake_clock_rejects_negative(self):
        clock = FakeClock()
        with pytest.raises(ValueError, match="negative duration"):
            clock.sleep(-1.0)
        with pytest.raises(ValueError, match="cannot advance time backwards"):
            clock.advance(-0.1)
        # A rejected advance must not move the clock at all.
        assert clock.now() == 0.0 and clock.sleeps == []

    def test_monotonic_clock_moves_forward(self):
        clock = MonotonicClock()
        first = clock.now()
        clock.sleep(0.0)  # must not raise, must not block
        assert clock.now() >= first


# ----------------------------------------------------------------------
class TestRegistry:
    def test_register_is_idempotent_per_digest(self):
        registry = ModelRegistry()
        buf = serialize(_compiled(0, bits=32))
        first = registry.register(buf)
        second = registry.register(buf)
        assert first is second
        assert first.registrations == 2
        assert len(registry) == 1
        assert first.digest == model_digest(buf)

    def test_distinct_models_get_distinct_digests(self):
        registry = ModelRegistry()
        a = registry.register(serialize(_compiled(0, bits=32)))
        b = registry.register(serialize(_compiled(1, bits=32)))
        assert a.digest != b.digest
        assert registry.digests() == sorted([a.digest, b.digest])

    def test_malformed_bytes_rejected(self):
        registry = ModelRegistry()
        with pytest.raises(GraphError):
            registry.register(b"not a model at all")
        assert len(registry) == 0

    def test_unknown_digest_raises(self):
        with pytest.raises(GraphError, match="unknown model digest"):
            ModelRegistry().get("deadbeef")

    def test_registration_compiles_once(self):
        obs.enable()
        registry = ModelRegistry()
        buf = serialize(_compiled(0, bits=32))
        registry.register(buf)
        registry.register(buf)
        counters = obs.REGISTRY.as_dict()["counters"]
        assert counters["serve.registry.loads"] == 1
        assert counters["serve.registry.hits"] == 1


# ----------------------------------------------------------------------
class TestInterpreterPool:
    def test_arena_accounting_scales_with_batch(self):
        graph = _compiled(0, bits=32)
        small = InterpreterPool(graph, max_batch=1)
        large = InterpreterPool(graph, max_batch=16)
        assert large.arena_bytes > small.arena_bytes

    def test_checkout_and_exhaustion(self):
        pool = InterpreterPool(_compiled(0, bits=32), max_batch=2, size=2)
        a = pool.acquire()
        b = pool.acquire()
        assert pool.in_use == 2
        with pytest.raises(GraphError, match="exhausted"):
            pool.acquire()
        pool.release(a)
        pool.release(b)
        assert pool.idle == 2

    def test_foreign_release_rejected(self):
        pool = InterpreterPool(_compiled(0, bits=32), max_batch=1)
        other = Interpreter(_compiled(1, bits=32))
        with pytest.raises(GraphError, match="does not belong"):
            pool.release(other)


# ----------------------------------------------------------------------
class TestInterpreterPlannedBatch:
    """Satellite: clear GraphError instead of a deep dispatch failure."""

    def test_invoke_beyond_planned_batch_raises_clearly(self):
        graph = _compiled(0, bits=32)
        interp = Interpreter(graph, max_batch=4)
        x = np.zeros((5, 10, 10, 1), dtype=np.float32)
        with pytest.raises(GraphError, match="exceeds the planned batch size 4"):
            interp.invoke(x)

    def test_invoke_at_planned_batch_works(self):
        graph = _compiled(0, bits=32)
        interp = Interpreter(graph, max_batch=4)
        out = interp.invoke(np.zeros((4, 10, 10, 1), dtype=np.float32))
        assert out.shape[0] == 4

    def test_unbounded_interpreter_unchanged(self):
        interp = Interpreter(_compiled(0, bits=32))
        assert interp.max_batch is None
        out = interp.invoke(np.zeros((9, 10, 10, 1), dtype=np.float32))
        assert out.shape[0] == 9

    @pytest.mark.parametrize("bad", [0, -3, 2.5, True, "8"])
    def test_plan_rejects_non_positive_int(self, bad):
        interp = Interpreter(_compiled(0, bits=32))
        with pytest.raises(GraphError):
            interp.plan(batch_size=bad)

    @pytest.mark.parametrize("bad", [0, -1, 1.5])
    def test_constructor_rejects_bad_max_batch(self, bad):
        with pytest.raises(GraphError):
            Interpreter(_compiled(0, bits=32), max_batch=bad)


# ----------------------------------------------------------------------
class TestBatchCoalescingParity:
    """Micro-batched output == serial batch-1 output, bit for bit."""

    @pytest.mark.parametrize("bits", [32, 8], ids=["float", "int8"])
    @pytest.mark.parametrize("coalesce", [1, 3, 8])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_bitwise_parity_across_coalesce_sizes(self, bits, coalesce, seed):
        graph = _compiled(seed, bits=bits)
        server = ModelServer(clock=FakeClock())
        digest = server.register(
            graph, TenantConfig(max_batch=coalesce, max_wait_s=0.0, queue_depth=64)
        )
        rng = np.random.default_rng(100 + seed)
        xs = rng.normal(size=(10, 10, 10, 1)).astype(np.float32)
        for i in range(len(xs)):
            server.submit(digest, xs[i], tag=i)
        server.run_until_idle()
        responses = server.drain()
        assert len(responses) == len(xs)
        assert all(r.ok for r in responses)
        # All dispatches coalesce to the configured ceiling (plus remainder).
        sizes = sorted({r.batch_size for r in responses})
        assert max(sizes) == min(coalesce, len(xs))

        serial = Interpreter(graph)
        for response in responses:
            expected = serial.invoke(xs[response.tag : response.tag + 1])[0]
            assert response.output.shape == expected.shape
            assert np.array_equal(response.output, expected), (
                f"bits={bits} coalesce={coalesce} request {response.request_id} "
                "diverged from serial batch-1 execution"
            )

    def test_parity_against_uncompiled_reference(self):
        """The compiled+batched server path matches the raw graph too."""
        raw = export_graph(_random_arch(3), bits=32)
        server = ModelServer(clock=FakeClock())
        digest = server.register(raw, TenantConfig(max_batch=4, max_wait_s=0.0))
        rng = np.random.default_rng(42)
        xs = rng.normal(size=(8, 10, 10, 1)).astype(np.float32)
        for i in range(len(xs)):
            server.submit(digest, xs[i], tag=i)
        server.run_until_idle()
        reference = Interpreter(raw)
        for response in server.drain():
            expected = reference.invoke(xs[response.tag : response.tag + 1])[0]
            np.testing.assert_allclose(response.output, expected, rtol=1e-4, atol=1e-5)


# ----------------------------------------------------------------------
class TestDeadlineScheduling:
    def _server(self, max_batch=2, max_wait=1.0, **kwargs):
        clock = FakeClock()
        server = ModelServer(clock=clock, **kwargs)
        digest = server.register(
            _compiled(0, bits=32),
            TenantConfig(max_batch=max_batch, max_wait_s=max_wait, queue_depth=64),
        )
        return server, clock, digest

    def test_same_deadline_is_fifo(self):
        server, clock, digest = self._server(max_batch=3, max_wait=0.5)
        x = np.zeros((10, 10, 1), dtype=np.float32)
        ids = [server.submit(digest, x, deadline_s=1.0) for _ in range(9)]
        clock.advance(0.5)
        server.run_until_idle()
        finished = [r.request_id for r in server.drain()]
        assert finished == ids  # strict arrival order, never reordered

    def test_earlier_deadline_jumps_the_queue(self):
        server, clock, digest = self._server(max_batch=1, max_wait=0.2)
        x = np.zeros((10, 10, 1), dtype=np.float32)
        relaxed = server.submit(digest, x, deadline_s=5.0)
        urgent = server.submit(digest, x, deadline_s=0.3)
        server.run_until_idle()
        # Dispatched one at a time (max_batch=1): the later-arriving urgent
        # request must be served first.
        assert [r.request_id for r in server.drain()] == [urgent, relaxed]

    def test_edf_across_models(self):
        clock = FakeClock()
        server = ModelServer(clock=clock)
        a = server.register(_compiled(0, bits=32), TenantConfig(max_batch=1, max_wait_s=0.0))
        b = server.register(_compiled(1, bits=32), TenantConfig(max_batch=1, max_wait_s=0.0))
        assert a != b
        x = np.zeros((10, 10, 1), dtype=np.float32)
        slow = server.submit(a, x, deadline_s=9.0)
        fast = server.submit(b, x, deadline_s=1.0)
        server.run_until_idle()
        assert [r.request_id for r in server.drain()] == [fast, slow]

    def test_next_wake_is_coalescing_window(self):
        server, clock, digest = self._server(max_batch=4, max_wait=0.25)
        assert server.next_wake() is None
        server.submit(digest, np.zeros((10, 10, 1), dtype=np.float32))
        assert server.next_wake() == pytest.approx(0.25)
        clock.advance(0.25)
        assert server.next_wake() == pytest.approx(clock.now())

    def test_full_batch_dispatches_before_window(self):
        server, clock, digest = self._server(max_batch=2, max_wait=10.0)
        x = np.zeros((10, 10, 1), dtype=np.float32)
        server.submit(digest, x)
        assert server.poll() == 0  # one request, window still open
        server.submit(digest, x)
        assert server.poll() == 2  # batch full: dispatch without waiting


# ----------------------------------------------------------------------
class TestOverloadShedding:
    def test_queue_full_sheds_with_structured_reason(self):
        obs.enable()
        clock = FakeClock()
        server = ModelServer(clock=clock)
        digest = server.register(
            _compiled(0, bits=32),
            TenantConfig(max_batch=2, max_wait_s=1.0, queue_depth=4,
                         default_deadline_s=10.0),
        )
        x = np.zeros((10, 10, 1), dtype=np.float32)
        for _ in range(10):
            server.submit(digest, x)
        # 4 queued, 6 shed at admission — nothing silently dropped.
        assert server.stats.submitted == 10
        assert server.stats.admitted == 4
        assert server.stats.shed == {SHED_QUEUE_FULL: 6}
        server.stats.verify_conservation(queued=server.queued())

        shed = [r for r in server.drain() if r.status == "shed"]
        assert len(shed) == 6
        for response in shed:
            assert response.shed.code == SHED_QUEUE_FULL
            assert "depth" in response.shed.detail
            assert response.output is None

        counters = obs.REGISTRY.as_dict()["counters"]
        assert counters["serve.shed"] == 6
        assert counters["serve.shed.queue_full"] == 6
        assert counters["serve.submitted"] == 10

        clock.advance(1.0)
        server.run_until_idle()
        responses = server.drain()
        assert all(r.ok for r in responses)
        server.stats.verify_conservation(queued=0)
        assert server.stats.completed == 4

    def test_expired_deadlines_shed_at_dispatch(self):
        clock = FakeClock()
        server = ModelServer(clock=clock)
        digest = server.register(
            _compiled(0, bits=32), TenantConfig(max_batch=4, max_wait_s=2.0)
        )
        x = np.zeros((10, 10, 1), dtype=np.float32)
        doomed = server.submit(digest, x, deadline_s=0.5)
        alive = server.submit(digest, x, deadline_s=10.0)
        clock.advance(2.0)  # window closes after the short deadline passed
        server.run_until_idle()
        responses = {r.request_id: r for r in server.drain()}
        assert responses[doomed].status == "shed"
        assert responses[doomed].shed.code == SHED_DEADLINE
        assert "queued" in responses[doomed].shed.detail
        assert responses[alive].ok
        server.stats.verify_conservation(queued=0, responses=len(responses))

    def test_failing_invoke_retries_then_sheds(self, monkeypatch):
        clock = FakeClock()
        server = ModelServer(clock=clock)
        digest = server.register(
            _compiled(0, bits=32),
            TenantConfig(max_batch=2, max_wait_s=0.0, max_retries=2,
                         retry_backoff_s=0.01),
        )
        pool = server.pool(digest)
        calls = []

        def explode(batch):
            calls.append(len(batch))
            raise RuntimeError("kernel fault")

        monkeypatch.setattr(pool._idle[0], "invoke", explode)
        x = np.zeros((10, 10, 1), dtype=np.float32)
        server.submit(digest, x)
        server.submit(digest, x)
        server.run_until_idle()
        responses = server.drain()
        assert len(calls) == 3  # initial + 2 bounded retries
        assert clock.sleeps == [0.01, 0.02]  # exponential, via the clock
        assert all(r.shed.code == SHED_EXECUTION for r in responses)
        assert server.stats.retries == 2
        server.stats.verify_conservation(queued=0, responses=len(responses))

    def test_transient_failure_recovers(self, monkeypatch):
        clock = FakeClock()
        server = ModelServer(clock=clock)
        digest = server.register(
            _compiled(0, bits=32),
            TenantConfig(max_batch=1, max_wait_s=0.0, max_retries=1),
        )
        pool = server.pool(digest)
        real_invoke = pool._idle[0].invoke
        state = {"failed": False}

        def flaky(batch):
            if not state["failed"]:
                state["failed"] = True
                raise RuntimeError("transient")
            return real_invoke(batch)

        monkeypatch.setattr(pool._idle[0], "invoke", flaky)
        server.submit(digest, np.zeros((10, 10, 1), dtype=np.float32))
        server.run_until_idle()
        (response,) = server.drain()
        assert response.ok
        assert server.stats.retries == 1

    def test_retry_exhaustion_preserves_submission_order(self, monkeypatch):
        # Exhausting retries on a batch must shed its members in strict
        # submission order, with the attempt count in the detail and every
        # backoff taken on the injectable clock *before* the shed lands.
        clock = FakeClock()
        server = ModelServer(clock=clock)
        digest = server.register(
            _compiled(0, bits=32),
            TenantConfig(max_batch=3, max_wait_s=0.0, max_retries=1,
                         retry_backoff_s=0.25),
        )
        pool = server.pool(digest)
        monkeypatch.setattr(
            pool._idle[0], "invoke",
            lambda batch: (_ for _ in ()).throw(RuntimeError("kernel fault")),
        )
        x = np.zeros((10, 10, 1), dtype=np.float32)
        ids = [server.submit(digest, x) for _ in range(3)]
        server.run_until_idle()
        responses = server.drain()
        assert [r.request_id for r in responses] == ids
        for response in responses:
            assert response.shed.code == SHED_EXECUTION
            assert "after 2 attempts" in response.shed.detail
            # The shed is stamped after the full retry dance: one backoff
            # sleep happened strictly before any response finished.
            assert response.finish_s >= 0.25
        assert clock.sleeps == [0.25]
        assert server.stats.retries == 1
        server.stats.verify_conservation(queued=0, responses=len(responses))

    def test_deadline_on_window_close_tick_is_served(self):
        # A deadline landing on the exact tick the coalescing window
        # closes is *inclusive*: expiry is strict (deadline < now), so the
        # race between "window closed" and "deadline passed" at the same
        # virtual instant resolves in the request's favor.
        clock = FakeClock()
        server = ModelServer(clock=clock)
        digest = server.register(
            _compiled(0, bits=32), TenantConfig(max_batch=4, max_wait_s=2.0)
        )
        x = np.zeros((10, 10, 1), dtype=np.float32)
        on_tick = server.submit(digest, x, deadline_s=2.0)
        just_under = server.submit(digest, x, deadline_s=2.0 - 1e-9)
        clock.advance(2.0)  # window close and on_tick's deadline coincide
        server.run_until_idle()
        responses = {r.request_id: r for r in server.drain()}
        assert responses[on_tick].ok
        assert responses[just_under].shed.code == SHED_DEADLINE
        server.stats.verify_conservation(queued=0, responses=len(responses))

    def test_conservation_violation_detected(self):
        stats = ServerStats(submitted=5, admitted=4, completed=4)
        with pytest.raises(GraphError, match="conservation violated"):
            stats.verify_conservation()


# ----------------------------------------------------------------------
class TestAdmissionControl:
    def test_oversized_model_rejected_by_device_budget(self):
        small = DEVICES["STM32F446RE"]
        server = ModelServer(clock=FakeClock(), device=small)
        arch = ArchSpec(
            name="too-big",
            input_shape=(64, 64, 3),
            layers=(ConvSpec(256, kernel=3), GlobalPoolSpec(), DenseSpec(4)),
        )
        graph = export_graph(arch, bits=32)
        with pytest.raises(DeploymentError):
            server.register(graph, TenantConfig(max_batch=4))

    def test_multi_tenant_arena_budget_enforced(self):
        small = DEVICES["STM32F446RE"]
        server = ModelServer(clock=FakeClock(), device=small)
        tenant = TenantConfig(max_batch=64)
        admitted = 0
        with pytest.raises(DeploymentError, match="tenant arenas"):
            for seed in range(64):
                server.register(_compiled(seed, bits=32), tenant)
                admitted += 1
        # At least one fit before the aggregate SRAM claim overflowed.
        assert admitted >= 1

    def test_no_device_means_no_admission_gate(self):
        server = ModelServer(clock=FakeClock())
        for seed in range(3):
            server.register(_compiled(seed, bits=32), TenantConfig(max_batch=64))

    def test_submit_validates_payload_shape(self):
        server = ModelServer(clock=FakeClock())
        digest = server.register(_compiled(0, bits=32))
        with pytest.raises(GraphError, match="payload shape"):
            server.submit(digest, np.zeros((3, 3, 1), dtype=np.float32))
        with pytest.raises(GraphError, match="not registered"):
            server.submit("feedfacefeedface", np.zeros((10, 10, 1), dtype=np.float32))
        # Nothing was counted against conservation for caller errors.
        assert server.stats.submitted == 0
