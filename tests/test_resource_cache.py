"""Memoized resource models: latency caches and the NAS profile cache."""

import numpy as np
import pytest

from repro.hw import DEVICES, LatencyModel, clear_latency_caches, get_device
from repro.hw.characterize import (
    characterize_layer_corpus,
    characterize_models,
    random_layer_corpus,
    sample_models,
)
from repro.hw.latency import LAYER_LATENCY_CACHE, MODEL_LATENCY_CACHE
from repro.hw.workload import LayerWorkload
from repro.nas import (
    budgets_for_device,
    clear_profile_cache,
    profile_cache_info,
    resource_profile,
)
from repro.nas.blackbox import DSCNNSearchSpace, RandomSearch, feasible


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_latency_caches()
    clear_profile_cache()
    yield
    clear_latency_caches()
    clear_profile_cache()


@pytest.fixture
def device():
    return get_device("STM32F446RE")


class TestSignatures:
    def test_signature_excludes_name(self):
        a = LayerWorkload.conv2d("stem", (8, 8, 4), 8, 3)
        b = LayerWorkload.conv2d("block3_pw", (8, 8, 4), 8, 3)
        assert a.signature == b.signature
        assert hash(a.signature) == hash(b.signature)

    def test_signature_distinguishes_geometry(self):
        a = LayerWorkload.conv2d("x", (8, 8, 4), 8, 3)
        b = LayerWorkload.conv2d("x", (8, 8, 4), 8, 3, stride=2)
        assert a.signature != b.signature


class TestLatencyCache:
    def test_fig3_corpus_cached_equals_uncached(self, device):
        """Memoization must not change a single Figure 3 value."""
        corpus = random_layer_corpus(0, count=150)
        uncached = characterize_layer_corpus(corpus, device, memoize=False)
        cached = characterize_layer_corpus(corpus, device, memoize=True)
        recached = characterize_layer_corpus(corpus, device, memoize=True)
        for u, c, r in zip(uncached, cached, recached):
            assert u.seconds == c.seconds == r.seconds
        assert LAYER_LATENCY_CACHE.hits > 0

    def test_layer_cache_hits_on_repeat_geometry(self, device):
        model = LatencyModel(device)
        wl = LayerWorkload.conv2d("c", (16, 16, 8), 16, 3)
        first = model.layer_latency(wl)
        info0 = LAYER_LATENCY_CACHE.info()
        second = model.layer_latency(
            LayerWorkload.conv2d("differently_named", (16, 16, 8), 16, 3)
        )
        info1 = LAYER_LATENCY_CACHE.info()
        assert second.seconds == first.seconds
        assert info1.hits == info0.hits + 1
        assert info1.entries == info0.entries
        # Timings still carry each query's own workload (names preserved).
        assert second.workload.name == "differently_named"

    def test_model_cache_serves_revisits(self, device):
        pool = sample_models("kws", 5, rng=9)
        revisits = [pool[i % len(pool)] for i in range(40)]
        uncached = characterize_models(revisits, device, memoize=False)
        clear_latency_caches()
        memoized = characterize_models(revisits, device, memoize=True)
        assert uncached == memoized
        info = MODEL_LATENCY_CACHE.info()
        assert info.misses == len(pool)
        assert info.hits == len(revisits) - len(pool)

    def test_distinct_devices_do_not_collide(self):
        devices = list(DEVICES.values())[:2]
        wl = LayerWorkload.conv2d("c", (8, 8, 4), 8, 3)
        seconds = {LatencyModel(d).layer_latency(wl).seconds for d in devices}
        assert len(seconds) == 2  # different devices → different cache rows

    def test_spread_flag_does_not_collide(self, device):
        wl = LayerWorkload.conv2d("c", (8, 8, 6), 6, 3)
        with_spread = LatencyModel(device, spread=True).layer_latency(wl).seconds
        without = LatencyModel(device, spread=False).layer_latency(wl).seconds
        assert with_spread != without


class TestProfileCache:
    def test_profile_matches_direct_accounting(self):
        from repro.models.spec import arch_workload, export_graph
        from repro.runtime.planner import plan_arena

        space = DSCNNSearchSpace(num_blocks=2, width_options=(16, 32))
        arch = space.to_arch((0, 1, 0))
        profile = resource_profile(arch)
        workload = arch_workload(arch)
        assert profile.params == workload.params
        assert profile.ops == workload.ops
        assert profile.activation_bytes == plan_arena(export_graph(arch, bits=8)).arena_bytes

    def test_equivalent_genomes_share_profile(self):
        """SKIP genes in different positions collapse to one cache entry."""
        space = DSCNNSearchSpace(num_blocks=3, width_options=(16, 32))
        resource_profile(space.to_arch((0, 1, -1, 1)))
        info0 = profile_cache_info()
        resource_profile(space.to_arch((0, -1, 1, 1)))
        info1 = profile_cache_info()
        assert info1.hits == info0.hits + 1
        assert info1.entries == info0.entries

    def test_fits_checks_every_budget_term(self, device):
        budget = budgets_for_device(device)
        space = DSCNNSearchSpace(num_blocks=1, width_options=(16,))
        profile = resource_profile(space.to_arch((0, 0)))
        assert profile.fits(budget)
        from repro.nas.budgets import ResourceBudget

        assert not profile.fits(ResourceBudget(params=1, activation_bytes=budget.activation_bytes))
        assert not profile.fits(ResourceBudget(params=budget.params, activation_bytes=1))
        assert not profile.fits(
            ResourceBudget(params=budget.params, activation_bytes=budget.activation_bytes, ops=1)
        )

    def test_random_search_hits_profile_cache(self, device):
        """A black-box run revisits geometries, so feasible() must hit."""
        budget = budgets_for_device(device)
        space = DSCNNSearchSpace(num_blocks=2, width_options=(16, 32))
        evaluations = []

        def evaluate(arch):
            evaluations.append(arch.name)
            return float(len(evaluations))

        RandomSearch(space, budget, max_evaluations=12).run(evaluate, rng=0)
        info = profile_cache_info()
        assert info.misses > 0
        assert info.hits > 0, "random search never reused a cached profile"

    def test_feasible_uses_cache(self, device):
        budget = budgets_for_device(device)
        space = DSCNNSearchSpace(num_blocks=2, width_options=(16, 32))
        arch = space.to_arch((1, 0, 1))
        first = feasible(arch, budget)
        info0 = profile_cache_info()
        second = feasible(arch, budget)
        info1 = profile_cache_info()
        assert first == second
        assert info1.hits == info0.hits + 1
