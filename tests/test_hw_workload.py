"""Layer/model workload op accounting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.hw.workload import LayerWorkload, ModelWorkload


class TestLayerWorkload:
    def test_conv2d_macs(self):
        layer = LayerWorkload.conv2d("c", (8, 8, 3), 16, kernel=3, stride=1)
        assert layer.macs == 8 * 8 * 9 * 3 * 16
        assert layer.ops == 2 * layer.macs
        assert layer.params == 9 * 3 * 16 + 16
        assert layer.output_shape == (8, 8, 16)

    def test_conv2d_stride_2(self):
        layer = LayerWorkload.conv2d("c", (9, 9, 1), 4, kernel=3, stride=2)
        assert layer.output_shape == (5, 5, 4)

    def test_conv2d_asymmetric(self):
        layer = LayerWorkload.conv2d("c", (49, 10, 1), 64, kernel=(10, 4), stride=(2, 1))
        assert layer.output_shape == (25, 10, 64)
        assert layer.macs == 25 * 10 * 10 * 4 * 1 * 64
        assert layer.kernel == (10, 4)

    def test_depthwise(self):
        layer = LayerWorkload.depthwise_conv2d("d", (10, 10, 8), kernel=3, stride=1)
        assert layer.macs == 10 * 10 * 9 * 8
        assert layer.params == 9 * 8 + 8

    def test_dense(self):
        layer = LayerWorkload.dense("f", 100, 10)
        assert layer.macs == 1000
        assert layer.params == 1010

    def test_pool_has_no_params(self):
        layer = LayerWorkload.pool("p", (8, 8, 4), pool=2)
        assert layer.params == 0
        assert layer.macs == 0
        assert layer.extra_ops > 0
        assert layer.output_shape == (4, 4, 4)

    def test_global_pool_and_add_and_softmax(self):
        gap = LayerWorkload.global_avg_pool("g", (4, 4, 8))
        assert gap.output_shape == (8,)
        add = LayerWorkload.add("a", (4, 4, 8))
        assert add.ops == 4 * 4 * 8
        sm = LayerWorkload.softmax("s", 12)
        assert sm.ops == 48

    def test_unknown_kind_rejected(self):
        with pytest.raises(ShapeError):
            LayerWorkload(kind="lstm", name="x", input_shape=(1,), output_shape=(1,))

    @given(
        size=st.integers(4, 32),
        cin=st.integers(1, 32),
        cout=st.integers(1, 32),
        kernel=st.sampled_from([1, 3, 5]),
    )
    @settings(max_examples=40, deadline=None)
    def test_conv_ops_scale_with_channels(self, size, cin, cout, kernel):
        layer = LayerWorkload.conv2d("c", (size, size, cin), cout, kernel)
        doubled = LayerWorkload.conv2d("c", (size, size, cin), 2 * cout, kernel)
        assert doubled.macs == 2 * layer.macs

    def test_kernel_area(self):
        layer = LayerWorkload.conv2d("c", (8, 8, 1), 4, kernel=(10, 4))
        assert layer.kernel_area == 40


class TestModelWorkload:
    def test_aggregation(self):
        model = ModelWorkload(name="m")
        a = LayerWorkload.conv2d("a", (8, 8, 1), 4, 3)
        b = LayerWorkload.dense("b", 4, 2)
        model.append(a)
        model.append(b)
        assert model.ops == a.ops + b.ops
        assert model.macs == a.macs + b.macs
        assert model.params == a.params + b.params
        assert len(model) == 2

    def test_ops_by_kind(self):
        model = ModelWorkload(name="m")
        model.append(LayerWorkload.conv2d("a", (8, 8, 1), 4, 3))
        model.append(LayerWorkload.conv2d("b", (8, 8, 4), 4, 3))
        model.append(LayerWorkload.dense("c", 4, 2))
        by_kind = model.ops_by_kind()
        assert set(by_kind) == {"conv2d", "dense"}
        assert by_kind["conv2d"] > by_kind["dense"]
