"""Task pipelines: training loops, AD scoring, uptime metric."""

import numpy as np
import pytest

from repro.models.spec import ArchSpec, ConvSpec, DenseSpec, GlobalPoolSpec
from repro.nn import accuracy
from repro.tasks import ad, kws, vww
from repro.tasks.common import TaskResult, TrainConfig, evaluate_graph, predict, train_and_deploy, train_classifier
from repro.utils.scale import CI, resolve_scale


@pytest.fixture(scope="module")
def toy_problem():
    """A texture-coded 3-class image problem (GAP-friendly: classes are
    distinguished by local pattern, not position)."""
    rng = np.random.default_rng(0)
    x = rng.normal(size=(150, 12, 12, 1)).astype(np.float32) * 0.3
    y = (np.arange(150) % 3).astype(np.int64)
    rows = np.arange(12)[:, None]
    cols = np.arange(12)[None, :]
    textures = [
        np.sin(rows * np.pi).astype(np.float32) + (rows % 2 == 0) * 1.0,  # horizontal stripes
        ((cols % 2 == 0) * 1.0).astype(np.float32),  # vertical stripes
        (((rows + cols) % 2 == 0) * 1.0).astype(np.float32),  # checkerboard
    ]
    for i, label in enumerate(y):
        x[i, :, :, 0] += textures[label]
    return x.astype(np.float32), y


@pytest.fixture(scope="module")
def toy_arch():
    return ArchSpec(
        "toy",
        (12, 12, 1),
        (ConvSpec(8, 3, stride=2), GlobalPoolSpec(), DenseSpec(3)),
    )


class TestTrainClassifier:
    def test_learns(self, toy_problem, toy_arch):
        x, y = toy_problem
        config = TrainConfig(epochs=20, batch_size=32, lr_max=0.02, qat_bits=None)
        module = train_classifier(toy_arch, x, y, config, rng=0)
        assert accuracy(predict(module, x), y) > 0.8

    def test_qat_training_works(self, toy_problem, toy_arch):
        x, y = toy_problem
        config = TrainConfig(epochs=20, batch_size=32, lr_max=0.02, qat_bits=8)
        module = train_classifier(toy_arch, x, y, config, rng=0)
        assert accuracy(predict(module, x), y) > 0.8

    def test_mixup_training_works(self, toy_problem, toy_arch):
        x, y = toy_problem
        config = TrainConfig(epochs=20, batch_size=32, lr_max=0.02, mixup_alpha=0.3, qat_bits=None)
        module = train_classifier(toy_arch, x, y, config, rng=0)
        assert accuracy(predict(module, x), y) > 0.7

    def test_sgd_option(self, toy_problem, toy_arch):
        x, y = toy_problem
        config = TrainConfig(epochs=15, batch_size=32, optimizer="sgd", lr_max=0.1, qat_bits=None)
        module = train_classifier(toy_arch, x, y, config, rng=0)
        assert accuracy(predict(module, x), y) > 0.6


class TestTrainAndDeploy:
    def test_full_pipeline(self, toy_problem, toy_arch):
        x, y = toy_problem
        config = TrainConfig(epochs=20, batch_size=32, lr_max=0.02, qat_bits=8)
        result = train_and_deploy(toy_arch, x, y, x[:60], y[:60], config, rng=0)
        assert isinstance(result, TaskResult)
        assert result.float_metric > 0.75
        assert result.quant_metric > 0.7
        assert result.metric == result.quant_metric
        result.graph.validate()

    def test_int4_deploy(self, toy_problem, toy_arch):
        x, y = toy_problem
        config = TrainConfig(epochs=20, batch_size=32, lr_max=0.02, qat_bits=4)
        result = train_and_deploy(toy_arch, x, y, x[:60], y[:60], config, rng=0, bits=4)
        assert result.quant_metric > 0.5
        weights = [t for t in result.graph.weight_tensors if t.kind == "weight"]
        assert all(w.dtype == "int4" for w in weights)

    def test_evaluate_graph_batching(self, toy_problem, toy_arch):
        x, y = toy_problem
        config = TrainConfig(epochs=2, batch_size=32, qat_bits=8)
        result = train_and_deploy(toy_arch, x, y, x[:10], y[:10], config, rng=0)
        big = evaluate_graph(result.graph, x[:70], batch_size=32)
        assert big.shape == (70, 3)


class TestADScoring:
    def test_anomaly_scores_orientation(self):
        probs = np.array([[0.9, 0.1], [0.2, 0.8]])
        ids = np.array([0, 0])
        scores = ad.anomaly_scores(probs, ids)
        # The second sample is unconfident about its own ID → more anomalous.
        assert scores[1] > scores[0]

    def test_logits_accepted(self):
        logits = np.array([[5.0, -5.0], [-5.0, 5.0]])
        scores = ad.anomaly_scores(logits, np.array([0, 0]))
        assert scores[1] > scores[0]

    def test_uptime_metric(self):
        assert ad.uptime_percent(0.64) == pytest.approx(100.0)
        assert ad.uptime_percent(0.32) == pytest.approx(50.0)
        assert ad.uptime_percent(0.0033, stride_s=0.032) == pytest.approx(10.3, abs=0.5)


class TestTaskConfigs:
    def test_default_configs_scaled(self):
        ci_cfg = kws.default_config(CI)
        assert ci_cfg.epochs >= 1
        assert ci_cfg.lr_max == 0.01 and ci_cfg.weight_decay == 0.001

    def test_vww_config_matches_paper_recipe(self):
        cfg = vww.default_config(CI)
        assert cfg.optimizer == "sgd"
        assert cfg.weight_decay == pytest.approx(0.00004)

    def test_ad_config_has_mixup(self):
        cfg = ad.default_config(CI)
        assert cfg.mixup_alpha == pytest.approx(0.3)

    def test_datasets_respect_scale(self):
        train, test = kws.make_datasets(CI, rng=0)
        assert len(train) >= len(test) * 0.5
        assert train.features.shape[1:] == (49, 10, 1)

    def test_ad_datasets(self):
        train, test = ad.make_datasets(CI, rng=0)
        assert train.anomaly.max() == 0
        assert test.anomaly.any()

    def test_vww_datasets_resolution(self):
        train, _ = vww.make_datasets(24, CI, rng=0)
        assert train.images.shape[1:] == (24, 24, 1)
