"""Profile a model: where do the milliseconds and kilobytes go?

The MCU developer's first two questions about any model, answered with the
library's profiler and memory visualizer:

* per-layer latency breakdown (which layers dominate, at what throughput);
* Figure-2-style SRAM/eFlash occupancy bars and the arena packing timeline.

Run:  python examples/profile_model.py [model] [device]
e.g.  python examples/profile_model.py MicroNet-KWS-M STM32F746ZG
"""

from __future__ import annotations

import sys

from repro.hw import get_device
from repro.hw.profiler import profile_model
from repro.models import dscnn, micronets
from repro.models.spec import arch_workload, export_graph
from repro.runtime.visualize import render_arena_timeline, render_memory_map

MODELS = {
    "MicroNet-KWS-S": micronets.micronet_kws_s,
    "MicroNet-KWS-M": micronets.micronet_kws_m,
    "MicroNet-KWS-L": micronets.micronet_kws_l,
    "MicroNet-AD-S": micronets.micronet_ad_s,
    "MicroNet-VWW-S": micronets.micronet_vww_s,
    "DSCNN-S": dscnn.dscnn_s,
    "DSCNN-L": dscnn.dscnn_l,
}


def main() -> None:
    model_name = sys.argv[1] if len(sys.argv) > 1 else "MicroNet-KWS-S"
    device = get_device(sys.argv[2] if len(sys.argv) > 2 else "STM32F446RE")
    if model_name not in MODELS:
        print(f"unknown model {model_name!r}; choose from {sorted(MODELS)}")
        raise SystemExit(2)

    arch = MODELS[model_name]()
    print(profile_model(arch_workload(arch), device).render())
    print()
    graph = export_graph(arch, bits=8)
    print(render_memory_map(graph, device))
    print()
    print(render_arena_timeline(graph))


if __name__ == "__main__":
    main()
