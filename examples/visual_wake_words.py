"""Visual wake words: person detection under MCU memory walls.

Trains MicroNet-VWW-S on the synthetic person/no-person task and contrasts
its deployability with the paper's external comparison points: ProxylessNAS
and MSNet are *more accurate* but their activation footprints exceed the
small/medium boards' SRAM — exactly the failure mode MicroNets' DNAS
constraints are designed to avoid (paper Figure 8).

Run:  python examples/visual_wake_words.py
"""

from __future__ import annotations

from repro.hw.devices import DEVICES
from repro.models import external
from repro.models.micronets import micronet_vww_s
from repro.runtime.deploy import deployment_report
from repro.tasks import vww
from repro.utils.scale import resolve_scale


def main() -> None:
    scale = resolve_scale()
    print(f"scale: {scale.name}")

    arch = micronet_vww_s()
    print(f"\n=== training {arch.name} (50x50 grayscale input) ===")
    result = vww.run(arch, scale=scale, rng=0)
    print(f"float accuracy: {result.float_metric:.1%}")
    print(f"int8  accuracy: {result.quant_metric:.1%}")

    print("\n=== deployability vs the paper's comparison models ===")
    print(f"{'model':22s} {'accuracy':>9s} {'SRAM':>9s} " +
          " ".join(f"{name[-6:]:>7s}" for name in DEVICES))
    row = [f"{arch.name:22s}", f"{result.quant_metric:8.1%} "]
    report_by_device = {
        name: deployment_report(result.graph, dev) for name, dev in DEVICES.items()
    }
    any_report = next(iter(report_by_device.values()))
    row.append(f"{any_report.memory.total_sram/1024:7.0f}KB")
    row += [f"{str(r.deployable):>7s}" for r in report_by_device.values()]
    print(" ".join(row))

    for ref in (external.PROXYLESSNAS_VWW, external.MSNET_VWW, external.TFLM_PERSON_DETECTION):
        fits = ref.deployability()
        print(
            f"{ref.name:22s} {ref.accuracy:8.1f}% {ref.sram_bytes/1024:7.0f}KB "
            + " ".join(f"{str(fits[name]):>7s}" for name in DEVICES)
            + f"   ({ref.note})"
        )

    print(
        "\nProxylessNAS/MSNet accuracies are the paper's reported values on the "
        "real VWW dataset; our accuracy is on the synthetic equivalent. The "
        "deployability columns are directly comparable — they depend only on "
        "memory footprints."
    )


if __name__ == "__main__":
    main()
