"""Differentiable NAS: discover a KWS model for a specific microcontroller.

The paper's core workflow (§5): define a DS-CNN supernet, derive resource
budgets from the target MCU (eFlash → model size, SRAM → working memory,
latency target → op count via the §3 linear proxy), search by gradient
descent, then verify the extracted architecture actually deploys.

Run:  python examples/dnas_search.py [device] [latency_target_s]
e.g.  python examples/dnas_search.py STM32F446RE 0.1
"""

from __future__ import annotations

import sys

from repro.datasets import make_kws_dataset
from repro.hw import get_device
from repro.models.spec import arch_workload, export_graph
from repro.nas import SearchConfig, budgets_for_device, search
from repro.nas.backbones import micronet_kws_supernet
from repro.runtime.deploy import deployment_report
from repro.utils.scale import resolve_scale


def main() -> None:
    device = get_device(sys.argv[1] if len(sys.argv) > 1 else "STM32F446RE")
    latency_target = float(sys.argv[2]) if len(sys.argv) > 2 else 0.1
    scale = resolve_scale()

    print(f"target: {device.name} ({device.sram_bytes//1024}KB SRAM, "
          f"{device.eflash_bytes//1024}KB flash), latency <= {latency_target}s")

    budget = budgets_for_device(device, latency_target_s=latency_target)
    print(f"budgets: params<={budget.params:,.0f}  "
          f"activations<={budget.activation_bytes:,.0f}B  ops<={budget.ops:,.0f}")

    train = make_kws_dataset(720 if scale.name == "ci" else 8000, rng=0)
    supernet = micronet_kws_supernet(scale, rng=0)
    config = SearchConfig(epochs=8 if scale.name == "ci" else 100, warmup_epochs=2)

    print(f"\nsearching ({config.epochs} epochs, "
          f"{len(supernet.decisions())} decision nodes)...")
    outcome = search(supernet, train.features, train.labels, budget, config, rng=0,
                     arch_name=f"DNAS-KWS-{device.size_class}")

    print(f"\ndiscovered architecture ({outcome.arch.name}):")
    for layer in outcome.arch.layers:
        print(f"  {layer}")
    workload = arch_workload(outcome.arch)
    print(f"\nexpected by search: params={outcome.expected_params:,.0f} "
          f"ops={outcome.expected_ops:,.0f} mem={outcome.expected_memory_bytes:,.0f}B")
    print(f"actual (extracted): params={workload.params:,} ops={workload.ops:,}")

    graph = export_graph(outcome.arch, bits=8)
    report = deployment_report(graph, device)
    print(f"\ndeploys on {device.name}: {report.deployable}")
    if report.deployable:
        print(f"  SRAM  {report.memory.total_sram/1024:.0f} KB "
              f"(margin {report.sram_margin_bytes/1024:.0f} KB)")
        print(f"  flash {report.memory.total_flash/1024:.0f} KB "
              f"(margin {report.flash_margin_bytes/1024:.0f} KB)")
        print(f"  latency {report.latency_s*1e3:.0f} ms "
              f"({'meets' if report.latency_s <= latency_target else 'misses'} "
              f"the {latency_target}s target)")


if __name__ == "__main__":
    main()
