"""Self-supervised anomaly detection on synthetic machine sounds.

Reproduces the paper's §4.3 formulation end to end: train a classifier to
recognize which of four slide-rail machines produced a (normal) sound clip;
at test time, score anomalies by how *unconfident* the classifier is about
a clip's true machine — a failing machine no longer sounds like itself.
Compares against the DCASE fully connected auto-encoder baseline, and
reports the paper's "Uptime" metric (latency / 640 ms input stride).

Run:  python examples/anomaly_detection.py
"""

from __future__ import annotations

from repro.hw.devices import SMALL
from repro.hw.latency import LatencyModel
from repro.models.autoencoders import fc_autoencoder_baseline
from repro.models.micronets import micronet_ad_s
from repro.models.spec import arch_workload
from repro.runtime.deploy import deployment_report
from repro.tasks import ad
from repro.utils.scale import resolve_scale


def main() -> None:
    scale = resolve_scale()
    print(f"scale: {scale.name}")

    arch = micronet_ad_s()
    print(f"\n=== MicroNet-AD-S: self-supervised machine-ID classifier ===")
    result = ad.run(arch, scale=scale, rng=0)
    print(f"float AUC: {result.float_metric:.3f}")
    print(f"int8  AUC: {result.quant_metric:.3f}")

    latency = LatencyModel(SMALL).model_latency(arch_workload(arch))
    uptime = ad.uptime_percent(latency)
    print(f"latency on {SMALL.name}: {latency*1e3:.0f} ms -> uptime {uptime:.0f}% "
          f"({'real-time' if uptime < 100 else 'NOT real-time'} at a 640 ms stride)")
    report = deployment_report(result.graph, SMALL)
    print(f"deploys on {SMALL.name}: {report.deployable} "
          f"(SRAM {report.memory.total_sram/1024:.0f} KB)")

    print(f"\n=== FC auto-encoder baseline (reconstruction scoring) ===")
    ae_result = ad.run_autoencoder(fc_autoencoder_baseline(), scale=scale, rng=0)
    print(f"float AUC: {ae_result.float_metric:.3f}")
    print(f"int8  AUC: {ae_result.quant_metric:.3f}")

    winner = "MicroNet" if result.quant_metric > ae_result.quant_metric else "FC-AE"
    print(f"\n{winner} wins on AUC "
          f"({result.quant_metric:.3f} vs {ae_result.quant_metric:.3f}) — "
          "the paper finds the self-supervised classifier far ahead "
          "(95-97% vs 84.8% AUC).")


if __name__ == "__main__":
    main()
