"""Always-on keyword spotting over a continuous audio stream.

Simulates the deployed application loop: a long synthetic audio stream
containing keywords at known times is pushed chunk-by-chunk through the
incremental MFCC front end; every hop the int8 model runs on the latest
49-frame window; smoothed posteriors fire detections. The MCU duty cycle
implied by the model's latency is reported at the end — tying back to the
paper's frames-per-second targets.

Run:  python examples/streaming_kws.py
"""

from __future__ import annotations

import numpy as np

from repro.audio.features import KWS_FEATURE_CONFIG
from repro.audio.streaming import StreamingDetector, StreamingFeatureExtractor
from repro.datasets.speech_commands import (
    KWS_CLASSES,
    SILENCE_INDEX,
    UNKNOWN_INDEX,
    _background_noise,
    _synthesize_word,
)
from repro.hw.devices import SMALL
from repro.hw.latency import LatencyModel
from repro.models.micronets import micronet_kws_s
from repro.models.spec import arch_workload
from repro.runtime import Interpreter
from repro.tasks import kws
from repro.utils.scale import resolve_scale


def build_stream(rng: np.random.Generator, seconds: float = 8.0):
    """A noise stream with three keywords injected at known offsets."""
    config = KWS_FEATURE_CONFIG
    n = int(config.sample_rate * seconds)
    stream = _background_noise(rng, n, 0.05)
    events = []
    for keyword, at_s in ((0, 1.5), (3, 4.0), (7, 6.2)):  # yes, down, off
        word = _synthesize_word(keyword, rng, config, time_jitter_ms=0.0)
        start = int(at_s * config.sample_rate)
        stream[start : start + len(word)] += word[: max(0, n - start)]
        events.append((keyword, at_s))
    return stream, events


def main() -> None:
    scale = resolve_scale()
    rng = np.random.default_rng(7)

    print("training MicroNet-KWS-S (int8) ...")
    result = kws.run(micronet_kws_s(), scale=scale, rng=0)
    print(f"deployed accuracy on held-out clips: {result.quant_metric:.1%}")
    interp = Interpreter(result.graph)

    # Match the training featurization: the dataset standardizes features.
    from repro.datasets.speech_commands import make_kws_dataset  # stats source
    stats_ds = make_kws_dataset(64, rng=1)

    stream, events = build_stream(rng)
    extractor = StreamingFeatureExtractor(KWS_FEATURE_CONFIG, window_frames=49)
    detector = StreamingDetector(
        num_classes=len(KWS_CLASSES),
        smoothing_windows=4,
        threshold=0.5,
        ignore_classes={SILENCE_INDEX, UNKNOWN_INDEX},
    )

    print(f"\nstreaming {len(stream)/KWS_FEATURE_CONFIG.sample_rate:.0f}s of audio "
          f"(keywords at {', '.join(f'{KWS_CLASSES[k]}@{t}s' for k, t in events)})")
    chunk = KWS_FEATURE_CONFIG.hop_length  # one hop of audio per iteration
    detections = []
    inferences = 0
    for start in range(0, len(stream) - chunk, chunk):
        extractor.push(stream[start : start + chunk])
        if not extractor.ready:
            continue
        window = extractor.window()[None, ...]
        window = (window - window.mean()) / (window.std() + 1e-6)
        probs = np.exp(interp.invoke(window)[0])
        probs = probs / probs.sum()
        inferences += 1
        fired = detector.update(probs)
        if fired is not None:
            t = start / KWS_FEATURE_CONFIG.sample_rate
            detections.append((KWS_CLASSES[fired], t))
            print(f"  t={t:5.2f}s  detected '{KWS_CLASSES[fired]}'")

    latency = LatencyModel(SMALL).model_latency(arch_workload(micronet_kws_s()))
    hop_s = KWS_FEATURE_CONFIG.hop_ms / 1000.0
    print(f"\n{inferences} inferences; model latency on {SMALL.name}: "
          f"{latency*1e3:.0f} ms per window")
    print(f"running every hop ({hop_s*1e3:.0f} ms) would need "
          f"{latency/hop_s:.1f}x real time -> duty-cycle every "
          f"{int(np.ceil(latency/hop_s))} hops for always-on operation")
    print(f"detections: {detections if detections else 'none'}")


if __name__ == "__main__":
    main()
