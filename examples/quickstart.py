"""Quickstart: train a keyword-spotting MicroNet and deploy it to an MCU.

This walks the library's whole pipeline in one script:

1. generate a synthetic Speech-Commands-style dataset;
2. train MicroNet-KWS-S with quantization-aware training;
3. export the model to an int8 "microbuffer" (the TFLite-flatbuffer
   analogue) with batch-norm folding and per-channel weight quantization;
4. check deployability and report latency/energy on all three MCUs.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.hw.devices import DEVICES
from repro.models import micronets
from repro.runtime import serialize
from repro.runtime.deploy import deployment_report
from repro.tasks import kws
from repro.utils.scale import resolve_scale


def main() -> None:
    scale = resolve_scale()
    print(f"scale: {scale.name} (set REPRO_SCALE=paper for full-size runs)")

    arch = micronets.micronet_kws_s()
    print(f"\n=== training {arch.name} on synthetic keyword spotting ===")
    result = kws.run(arch, scale=scale, rng=0)
    print(f"float accuracy:   {result.float_metric:.1%}")
    print(f"int8  accuracy:   {result.quant_metric:.1%}  (deployed model)")

    model_bytes = serialize(result.graph)
    print(f"\nserialized model: {len(model_bytes) / 1024:.1f} KB")

    print("\n=== deployment matrix ===")
    header = f"{'device':14s} {'fits':5s} {'SRAM used':>12s} {'latency':>10s} {'energy':>10s}"
    print(header)
    print("-" * len(header))
    for device in DEVICES.values():
        report = deployment_report(result.graph, device)
        sram = f"{report.memory.total_sram / 1024:.0f}/{device.sram_bytes // 1024}KB"
        latency = f"{report.latency_s * 1e3:.0f} ms" if report.latency_s else "-"
        energy = f"{report.energy_j * 1e3:.1f} mJ" if report.energy_j else "-"
        print(f"{device.name:14s} {str(report.deployable):5s} {sram:>12s} {latency:>10s} {energy:>10s}")

    print(
        "\nThe model deploys on every board — on the smallest ($3) MCU it "
        "also uses the least energy per inference, the paper's Figure 5 point."
    )


if __name__ == "__main__":
    main()
