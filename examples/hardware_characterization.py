"""Reproduce the paper's hardware characterization (§3) on the MCU model.

Samples hundreds of random models from two supernet backbones, times them
on the simulated boards, and prints the §3 findings:

* per-layer latency is noisy in op count (layer-kind spread, the
  channels-divisible-by-4 fast path);
* whole-model latency is linear in ops with a backbone-specific slope;
* power is a device constant, so energy is linear in ops too — and the
  smallest MCU wins on energy per inference.

Run:  python examples/hardware_characterization.py
"""

from __future__ import annotations

import numpy as np

from repro.hw import EnergyModel, LatencyModel, MEDIUM, SMALL, LARGE
from repro.hw.characterize import channel_sweep_conv, random_layer_corpus, sample_models
from repro.hw.latency import fit_linear_latency


def main() -> None:
    print("=== layer-level view (Figure 3) ===")
    model = LatencyModel(LARGE)
    corpus = random_layer_corpus(rng=0, count=200)
    for kind in ("conv2d", "depthwise_conv2d", "dense"):
        rates = [
            model.layer_latency(l).ops_per_second / 1e6
            for l in corpus
            if l.kind == kind
        ]
        print(f"{kind:18s} median {np.median(rates):6.1f} Mops/s "
              f"(p10 {np.percentile(rates, 10):5.1f}, p90 {np.percentile(rates, 90):6.1f})")
    t138 = model.layer_latency(channel_sweep_conv(138)).seconds
    t140 = model.layer_latency(channel_sweep_conv(140)).seconds
    print(f"conv 138/138 vs 140/140 channels: {t138*1e3:.0f} ms vs {t140*1e3:.0f} ms "
          f"-> the *larger* layer is {t138/t140:.2f}x faster (CMSIS-NN fast path)")

    print("\n=== model-level view (Figure 4) ===")
    for device in (SMALL, MEDIUM):
        latency_model = LatencyModel(device)
        for backbone in ("cifar10", "kws"):
            models = sample_models(backbone, 200, rng=1)
            fit = fit_linear_latency(models, latency_model)
            print(f"{device.name} / {backbone:8s}: r^2={fit.r_squared:.4f} "
                  f"throughput={fit.throughput_mops:6.1f} Mops/s")

    print("\n=== energy view (Figure 5) ===")
    models = sample_models("cifar10", 400, rng=2)
    for device in (SMALL, MEDIUM):
        em = EnergyModel(device)
        powers = np.array([em.power(m) for m in models])
        energies = np.array([em.energy(m).energy_mj for m in models])
        print(f"{device.name}: power {powers.mean()*1e3:5.1f} mW "
              f"(CV {powers.std()/powers.mean():.4f}), "
              f"mean energy {energies.mean():6.1f} mJ/inference")
    print("\nops is a viable proxy for both latency and energy -> DNAS can "
          "regularize on op count (the paper's key enabling observation).")


if __name__ == "__main__":
    main()
